"""Machine learning inference in firmware (Section 5).

The paper's adaptation models run on an existing 500-MIPS
microcontroller with 50% of cycles safely available. This package
models that deployment path end to end:

* :mod:`repro.firmware.ucontroller` — the microcontroller and its
  per-granularity ops budget (left table of Table 3).
* :mod:`repro.firmware.codegen` — compiles trained estimators into
  firmware programs: packed little-endian parameter images plus an op
  schedule with per-primitive costs calibrated to the paper's hand-
  optimised assembly (Listings 1 and 2).
* :mod:`repro.firmware.vm` — a float32 interpreter that executes
  compiled programs, reproducing microcontroller arithmetic; outputs
  match the numpy models to float32 tolerance while op counts are
  metered exactly.
* :mod:`repro.firmware.opcount` — per-model inference cost and memory
  footprint reports (right table of Table 3).
* :mod:`repro.firmware.deploy` — firmware images and the post-silicon
  update flow (Section 7.3): package, checksum, install, roll back.
"""

from repro.firmware.codegen import FirmwareProgram, compile_model
from repro.firmware.deploy import FirmwareImage, FirmwareStore
from repro.firmware.disasm import disassemble
from repro.firmware.opcount import CostReport, cost_report
from repro.firmware.ucontroller import Microcontroller
from repro.firmware.vm import FirmwareVM

__all__ = [
    "FirmwareProgram",
    "compile_model",
    "FirmwareImage",
    "FirmwareStore",
    "disassemble",
    "CostReport",
    "cost_report",
    "Microcontroller",
    "FirmwareVM",
]
