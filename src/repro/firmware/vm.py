"""Firmware virtual machine.

Executes compiled :class:`~repro.firmware.codegen.FirmwareProgram`
images with float32 arithmetic — the microcontroller supports scalar
integer and floating point only — and meters executed operations using
the same per-primitive costs the compiler charges, so measured cost
equals the static ``ops_per_prediction``. Outputs match the host numpy
models to float32 tolerance; a parity test guards this.
"""

from __future__ import annotations

import dataclasses
import struct

import numpy as np

from repro.errors import ConfigurationError
from repro.firmware import codegen
from repro.firmware.codegen import FirmwareProgram

_F32 = np.float32


def _sigmoid32(z: np.ndarray) -> np.ndarray:
    z = z.astype(_F32)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = _F32(1.0) / (_F32(1.0) + np.exp(-z[pos], dtype=_F32))
    ez = np.exp(z[~pos], dtype=_F32)
    out[~pos] = ez / (_F32(1.0) + ez)
    return out


@dataclasses.dataclass
class ExecutionTrace:
    """Accounting of one batch execution."""

    predictions: np.ndarray
    probabilities: np.ndarray
    ops_executed: int
    ops_per_prediction: int


class FirmwareVM:
    """Interprets firmware programs over batches of counter vectors."""

    def run(self, program: FirmwareProgram, x: np.ndarray,
            ) -> ExecutionTrace:
        """Execute a program on every row of ``x``."""
        x = np.asarray(x, dtype=_F32)
        if x.ndim != 2:
            raise ConfigurationError(f"X must be 2-D, got {x.shape}")
        if x.shape[1] != program.n_inputs:
            raise ConfigurationError(
                f"program expects {program.n_inputs} inputs, got "
                f"{x.shape[1]}"
            )
        handler = getattr(self, f"_run_{program.kind}", None)
        if handler is None:
            raise ConfigurationError(f"unknown program kind {program.kind}")
        probs, ops_each = handler(program, x)
        threshold = _F32(program.metadata.get("threshold", 0.5))
        return ExecutionTrace(
            predictions=(probs >= threshold).astype(np.int64),
            probabilities=probs,
            ops_executed=ops_each * x.shape[0],
            ops_per_prediction=ops_each,
        )

    # ------------------------------------------------------------------
    def _run_mlp(self, program: FirmwareProgram, x: np.ndarray,
                 ) -> tuple[np.ndarray, int]:
        buf = program.image
        (n_sizes,) = struct.unpack_from("<I", buf, 0)
        sizes = struct.unpack_from(f"<{n_sizes}I", buf, 4)
        offset = 4 + 4 * n_sizes
        d = sizes[0]
        mean = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        scale = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        h = ((x - mean) / scale).astype(_F32)
        ops = 0
        last = len(sizes) - 2
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            w = np.frombuffer(buf, "<f4", fan_in * fan_out, offset)
            offset += 4 * fan_in * fan_out
            b = np.frombuffer(buf, "<f4", fan_out, offset)
            offset += 4 * fan_out
            z = h @ w.reshape(fan_in, fan_out).astype(_F32) + b
            ops += codegen.MAC_OPS * fan_in * fan_out
            if i == last:
                h = _sigmoid32(z)
            else:
                h = np.maximum(z, _F32(0.0))
                ops += codegen.RELU_OPS * fan_out
        return h[:, 0], ops

    def _run_forest(self, program: FirmwareProgram, x: np.ndarray,
                    ) -> tuple[np.ndarray, int]:
        buf = program.image
        n_trees, depth, n_features = struct.unpack_from("<III", buf, 0)
        offset = 12
        n_internal = (1 << depth) - 1
        n_leaves = 1 << depth
        votes = np.zeros(x.shape[0], dtype=_F32)
        for _ in range(n_trees):
            features = np.frombuffer(buf, np.uint8, n_internal, offset)
            offset += n_internal
            thresholds = np.frombuffer(buf, "<f4", n_internal, offset)
            offset += 4 * n_internal
            leaves = np.frombuffer(buf, np.uint8, n_leaves, offset)
            offset += n_leaves
            idx = np.zeros(x.shape[0], dtype=np.int64)
            for _level in range(depth):
                go_right = x[np.arange(x.shape[0]),
                             features[idx]] > thresholds[idx]
                idx = 2 * idx + 1 + go_right
            votes += leaves[idx - n_internal].astype(_F32) / _F32(255.0)
        ops = (n_trees * (depth * codegen.TREE_LEVEL_OPS
                          + codegen.TREE_EPILOGUE_OPS)
               + codegen.FOREST_OVERHEAD_OPS)
        return votes / _F32(n_trees), ops

    def _run_tree(self, program: FirmwareProgram, x: np.ndarray,
                  ) -> tuple[np.ndarray, int]:
        buf = program.image
        depth, n_features = struct.unpack_from("<II", buf, 0)
        offset = 8
        n_internal = (1 << depth) - 1
        features = np.frombuffer(buf, np.uint8, n_internal, offset)
        offset += n_internal
        thresholds = np.frombuffer(buf, "<f4", n_internal, offset)
        offset += 4 * n_internal
        leaves = np.frombuffer(buf, np.uint8, 1 << depth, offset)
        idx = np.zeros(x.shape[0], dtype=np.int64)
        for _level in range(depth):
            go_right = x[np.arange(x.shape[0]),
                         features[idx]] > thresholds[idx]
            idx = 2 * idx + 1 + go_right
        probs = leaves[idx - n_internal].astype(_F32) / _F32(255.0)
        ops = (depth * codegen.TREE_LEVEL_OPS + codegen.TREE_EPILOGUE_OPS
               + codegen.FOREST_OVERHEAD_OPS)
        return probs, ops

    def _run_logistic(self, program: FirmwareProgram, x: np.ndarray,
                      ) -> tuple[np.ndarray, int]:
        buf = program.image
        (d,) = struct.unpack_from("<I", buf, 0)
        offset = 4
        mean = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        scale = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        coef = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        (intercept,) = np.frombuffer(buf, "<f4", 1, offset)
        z = ((x - mean) / scale).astype(_F32) @ coef + intercept
        ops = (codegen.MAC_OPS * d + codegen.LOGISTIC_OVERHEAD_OPS
               + codegen.SIGMOID_OPS)
        return _sigmoid32(z), ops

    def _run_linear_svm(self, program: FirmwareProgram, x: np.ndarray,
                        ) -> tuple[np.ndarray, int]:
        buf = program.image
        members, d = struct.unpack_from("<II", buf, 0)
        offset = 8
        mean = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        scale = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        coefs = np.frombuffer(buf, "<f4", members * d, offset)
        offset += 4 * members * d
        intercepts = np.frombuffer(buf, "<f4", members, offset)
        xs = ((x - mean) / scale).astype(_F32)
        margins = xs @ coefs.reshape(members, d).T.astype(_F32) + intercepts
        ops = (members * (codegen.MAC_OPS * d
                          + codegen.LINEAR_SVM_MEMBER_OVERHEAD) + 2)
        return _sigmoid32(margins.mean(axis=1, dtype=_F32)), ops

    def _run_kernel_svm(self, program: FirmwareProgram, x: np.ndarray,
                        ) -> tuple[np.ndarray, int]:
        buf = program.image
        n_sv, d = struct.unpack_from("<II", buf, 0)
        offset = 8
        lo = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        rng = np.frombuffer(buf, "<f4", d, offset); offset += 4 * d
        sv = np.frombuffer(buf, "<f4", n_sv * d, offset).reshape(n_sv, d)
        offset += 4 * n_sv * d
        alpha_y = np.frombuffer(buf, "<f4", n_sv, offset)
        offset += 4 * n_sv
        intercept, gamma = np.frombuffer(buf, "<f4", 2, offset)
        xs = np.clip((x - lo) / rng, _F32(0.0), _F32(1.0)).astype(_F32)
        diff = xs[:, None, :] - sv[None, :, :]
        denom = xs[:, None, :] + sv[None, :, :]
        denom = np.where(denom <= 0, _F32(1.0), denom)
        dist = (diff * diff / denom).sum(axis=2, dtype=_F32)
        gram = np.exp(-gamma * dist, dtype=_F32)
        z = gram @ alpha_y + intercept
        ops = n_sv * (codegen.KERNEL_DIM_OPS * d + 1) + codegen.SIGMOID_OPS
        return _sigmoid32(z), ops

    def _run_srch(self, program: FirmwareProgram, x: np.ndarray,
                  ) -> tuple[np.ndarray, int]:
        buf = program.image
        n_counters, n_buckets, n_features = struct.unpack_from("<III",
                                                               buf, 0)
        offset = 12
        n_edges = n_counters * (n_buckets - 1)
        edges = np.frombuffer(buf, "<f4", n_edges, offset).reshape(
            n_counters, n_buckets - 1)
        offset += 4 * n_edges
        mean = np.frombuffer(buf, "<f4", n_features, offset)
        offset += 4 * n_features
        scale = np.frombuffer(buf, "<f4", n_features, offset)
        offset += 4 * n_features
        coef = np.frombuffer(buf, "<f4", n_features, offset)
        offset += 4 * n_features
        (intercept,) = np.frombuffer(buf, "<f4", 1, offset)
        features = np.zeros((x.shape[0], n_features), dtype=_F32)
        for c in range(n_counters):
            buckets = np.searchsorted(edges[c], x[:, c], side="right")
            features[np.arange(x.shape[0]), c * n_buckets + buckets] = 1.0
        z = ((features - mean) / scale).astype(_F32) @ coef + intercept
        ops = (codegen.MAC_OPS * n_features
               + codegen.LOGISTIC_OVERHEAD_OPS + codegen.SIGMOID_OPS)
        return _sigmoid32(z), ops
