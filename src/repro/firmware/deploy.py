"""Firmware images and the post-silicon update flow (Section 7.3).

The paper's headline deployment story: adaptation behaviour changes
with a firmware update pushed through ordinary datacenter
infrastructure management software. A :class:`FirmwareImage` packages a
dual-mode predictor's compiled programs with metadata and a checksum;
a :class:`FirmwareStore` models the device side — install, activate,
history, rollback.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct

import numpy as np

from repro.core.predictor import DualModePredictor
from repro.errors import ConfigurationError
from repro.firmware.codegen import FirmwareProgram, compile_model
from repro.uarch.modes import Mode


@dataclasses.dataclass(frozen=True)
class FirmwareImage:
    """A signed-ish, versioned firmware payload for one predictor."""

    name: str
    version: int
    programs: dict[Mode, FirmwareProgram]
    counter_ids: tuple[int, ...]
    granularity_factor: int
    sla_floor: float
    checksum: str

    @property
    def total_bytes(self) -> int:
        """Payload size of both mode programs."""
        return sum(p.memory_bytes for p in self.programs.values())

    def verify(self) -> bool:
        """Recompute and compare the checksum."""
        return self.checksum == _image_checksum(self.programs)

    def save(self, path: str) -> None:
        """Write the image as one flashable payload file.

        Layout: a JSON manifest header (length-prefixed) followed by
        each mode's program image (length-prefixed, mode order).
        """
        header = self.manifest().encode()
        with open(path, "wb") as handle:
            handle.write(b"RPFW")
            handle.write(struct.pack("<I", len(header)))
            handle.write(header)
            for mode in Mode:
                program = self.programs[mode]
                meta = json.dumps({
                    "kind": program.kind,
                    "ops": program.ops_per_prediction,
                    "n_inputs": program.n_inputs,
                    "metadata": _jsonable(program.metadata),
                }).encode()
                handle.write(struct.pack("<II", len(meta),
                                         len(program.image)))
                handle.write(meta)
                handle.write(program.image)

    @classmethod
    def load(cls, path: str) -> "FirmwareImage":
        """Read a payload written by :meth:`save` and verify it."""
        with open(path, "rb") as handle:
            magic = handle.read(4)
            if magic != b"RPFW":
                raise ConfigurationError(
                    f"{os.path.basename(path)} is not a firmware image"
                )
            (header_len,) = struct.unpack("<I", handle.read(4))
            manifest = json.loads(handle.read(header_len))
            programs: dict[Mode, FirmwareProgram] = {}
            for mode in Mode:
                meta_len, image_len = struct.unpack("<II",
                                                    handle.read(8))
                meta = json.loads(handle.read(meta_len))
                image = handle.read(image_len)
                programs[mode] = FirmwareProgram(
                    kind=meta["kind"],
                    image=image,
                    ops_per_prediction=meta["ops"],
                    n_inputs=meta["n_inputs"],
                    metadata=meta["metadata"],
                )
        loaded = cls(
            name=manifest["name"],
            version=manifest["version"],
            programs=programs,
            counter_ids=tuple(manifest["counters"]),
            granularity_factor=manifest["granularity_factor"],
            sla_floor=manifest["sla_floor"],
            checksum=manifest["checksum"],
        )
        if not loaded.verify():
            raise ConfigurationError(
                f"{os.path.basename(path)} failed checksum verification"
            )
        return loaded

    def manifest(self) -> str:
        """Human-readable JSON manifest (what a DCIM tool would show)."""
        return json.dumps({
            "name": self.name,
            "version": self.version,
            "sla_floor": self.sla_floor,
            "granularity_factor": self.granularity_factor,
            "counters": list(self.counter_ids),
            "bytes": self.total_bytes,
            "checksum": self.checksum,
            "kinds": {m.value: p.kind for m, p in self.programs.items()},
        }, indent=2, sort_keys=True)


def _jsonable(metadata: dict) -> dict:
    """Round-trip-safe copy of program metadata (tuples become lists)."""
    out = {}
    for key, value in metadata.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out


def _image_checksum(programs: dict[Mode, FirmwareProgram]) -> str:
    digest = hashlib.sha256()
    for mode in Mode:
        digest.update(mode.value.encode())
        digest.update(programs[mode].image)
    return digest.hexdigest()


def package_firmware(predictor: DualModePredictor, version: int = 1,
                     sla_floor: float = 0.9) -> FirmwareImage:
    """Compile a dual-mode predictor into a firmware image."""
    programs = {mode: compile_model(predictor.models[mode])
                for mode in Mode}
    return FirmwareImage(
        name=predictor.name,
        version=version,
        programs=programs,
        counter_ids=tuple(int(c) for c in np.asarray(predictor.counter_ids)),
        granularity_factor=predictor.granularity_factor,
        sla_floor=sla_floor,
        checksum=_image_checksum(programs),
    )


class FirmwareStore:
    """Device-side firmware slots: install, activate, roll back."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 2:
            raise ConfigurationError("store needs at least two slots")
        self.capacity = capacity
        self._images: list[FirmwareImage] = []
        self._active: int | None = None

    @property
    def active(self) -> FirmwareImage | None:
        """The currently running image, if any."""
        if self._active is None:
            return None
        return self._images[self._active]

    @property
    def history(self) -> list[FirmwareImage]:
        """Installed images, oldest first."""
        return list(self._images)

    def install(self, image: FirmwareImage, activate: bool = True) -> None:
        """Install (and by default activate) a firmware image.

        Corrupt images are rejected; when the store is full, the oldest
        non-active image is evicted.
        """
        if not image.verify():
            raise ConfigurationError(
                f"firmware image {image.name} v{image.version} failed "
                f"checksum verification"
            )
        if len(self._images) >= self.capacity:
            for i, old in enumerate(self._images):
                if i != self._active:
                    del self._images[i]
                    if self._active is not None and i < self._active:
                        self._active -= 1
                    break
        self._images.append(image)
        if activate:
            self._active = len(self._images) - 1

    def activate(self, name: str, version: int) -> FirmwareImage:
        """Switch to an already-installed image."""
        for i, image in enumerate(self._images):
            if image.name == name and image.version == version:
                self._active = i
                return image
        raise ConfigurationError(f"no installed image {name} v{version}")

    def rollback(self) -> FirmwareImage:
        """Re-activate the previously installed image."""
        if self._active is None or self._active == 0:
            raise ConfigurationError("nothing to roll back to")
        self._active -= 1
        return self._images[self._active]
