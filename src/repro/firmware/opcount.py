"""Per-model inference cost and memory footprint reports (Table 3).

Builds the right half of Table 3: for each model class, the ops per
prediction (as metered by the firmware compiler), the memory footprint
(honest packed-image bytes plus the paper's accounting convention), and
the finest gating granularity the microcontroller supports for it.
"""

from __future__ import annotations

import dataclasses

from repro.errors import BudgetExceededError
from repro.firmware.codegen import FirmwareProgram, compile_model
from repro.firmware.ucontroller import Microcontroller
from repro.ml.base import Estimator


@dataclasses.dataclass(frozen=True)
class CostReport:
    """One Table-3 row for a compiled model."""

    model_name: str
    kind: str
    n_inputs: int
    ops_per_prediction: int
    memory_bytes: int
    paper_footprint_bytes: int | None
    finest_granularity: int | None

    def fits(self, budget_ops: int) -> bool:
        """Whether the model fits a per-prediction ops budget."""
        return self.ops_per_prediction <= budget_ops


def cost_report(model: Estimator, model_name: str,
                microcontroller: Microcontroller | None = None,
                program: FirmwareProgram | None = None) -> CostReport:
    """Compile a model and report its firmware deployment costs."""
    microcontroller = microcontroller or Microcontroller()
    program = program or compile_model(model)
    try:
        finest: int | None = microcontroller.finest_granularity(
            program.ops_per_prediction)
    except BudgetExceededError:
        finest = None
    return CostReport(
        model_name=model_name,
        kind=program.kind,
        n_inputs=program.n_inputs,
        ops_per_prediction=program.ops_per_prediction,
        memory_bytes=program.memory_bytes,
        paper_footprint_bytes=program.metadata.get(
            "paper_footprint_bytes"),
        finest_granularity=finest,
    )


def mlp_ops(layer_sizes: list[int]) -> int:
    """Analytic MLP inference cost for a topology (input..output).

    Used by the hyperparameter screen (Figure 6) to restrict candidate
    topologies to a granularity's budget without training them first.
    """
    from repro.firmware import codegen
    macs = sum(a * b for a, b in zip(layer_sizes[:-1], layer_sizes[1:]))
    hidden = sum(layer_sizes[1:-1])
    return codegen.MAC_OPS * macs + codegen.RELU_OPS * hidden


def forest_ops(n_trees: int, depth: int) -> int:
    """Analytic random-forest inference cost."""
    from repro.firmware import codegen
    return (n_trees * (depth * codegen.TREE_LEVEL_OPS
                       + codegen.TREE_EPILOGUE_OPS)
            + codegen.FOREST_OVERHEAD_OPS)
