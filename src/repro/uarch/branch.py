"""Branch predictors.

Structural front-end components of the cycle tier: a bimodal table and
a gshare predictor (global history XOR PC indexing into 2-bit
counters). The trace-driven core consumes *annotated* branch outcomes
sampled from phase physics (which keeps the two simulator tiers
statistically aligned); these predictors are exercised directly by the
structural tests and the front-end example.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class BimodalPredictor:
    """Per-PC 2-bit saturating counter table."""

    def __init__(self, table_bits: int = 12) -> None:
        if not 1 <= table_bits <= 24:
            raise ConfigurationError(f"table_bits out of range: {table_bits}")
        self.table_bits = table_bits
        self.table = np.full(1 << table_bits, 2, dtype=np.int8)  # weak T

    def _index(self, pc: int) -> int:
        return (pc >> 2) & ((1 << self.table_bits) - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for a branch at ``pc``."""
        return bool(self.table[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved direction."""
        i = self._index(pc)
        if taken:
            self.table[i] = min(self.table[i] + 1, 3)
        else:
            self.table[i] = max(self.table[i] - 1, 0)


class GsharePredictor:
    """Global-history-XOR-PC indexed 2-bit counters."""

    def __init__(self, table_bits: int = 14, history_bits: int = 12) -> None:
        if history_bits > table_bits:
            raise ConfigurationError("history_bits must be <= table_bits")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self.table = np.full(1 << table_bits, 2, dtype=np.int8)
        self.history = 0

    def _index(self, pc: int) -> int:
        hist = self.history & ((1 << self.history_bits) - 1)
        return ((pc >> 2) ^ hist) & ((1 << self.table_bits) - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for a branch at ``pc``."""
        return bool(self.table[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        """Train and shift the resolved direction into history."""
        i = self._index(pc)
        if taken:
            self.table[i] = min(self.table[i] + 1, 3)
        else:
            self.table[i] = max(self.table[i] - 1, 0)
        self.history = ((self.history << 1) | int(taken)) & (
            (1 << self.history_bits) - 1)


def measure_mispredict_rate(predictor, pcs: np.ndarray,
                            outcomes: np.ndarray) -> float:
    """Run a predictor over a (pc, outcome) stream; return miss rate."""
    if pcs.shape != outcomes.shape:
        raise ConfigurationError("pcs and outcomes must align")
    misses = 0
    for pc, taken in zip(pcs.tolist(), outcomes.tolist()):
        if predictor.predict(pc) != bool(taken):
            misses += 1
        predictor.update(pc, bool(taken))
    return misses / max(len(pcs), 1)
