"""Event-based power model.

Stand-in for the Skylake power model of Haj-Yihia et al. [20] that the
paper uses: an event-based model whose per-event energy weights were
fit to a proprietary power simulator. Ours assigns an energy (in
nanojoules) to each base signal event plus per-cluster and uncore
static power; weights are calibrated so low-power mode consumes ~35%
less power than high-performance mode on average across the HDTR-like
corpus, as the paper states (Section 3).

Clock-gating cluster 2 removes its clock-tree and most of its standby
power (``CLUSTER_GATING_SAVINGS``); the remaining fraction models
ungated leakage.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import MachineConfig
from repro.uarch.interval_model import IntervalResult
from repro.uarch.modes import Mode
from repro.uarch.signals import signal_index

#: Default per-event energies in nanojoules.
DEFAULT_EVENT_ENERGY_NJ: dict[str, float] = {
    "uops_retired": 0.55,
    "wrong_path_uops": 0.45,
    "loads_retired": 0.50,
    "stores_retired": 0.65,
    "fp_ops_retired": 0.90,
    "int_muls": 0.40,
    "fp_divides": 3.00,
    "l1d_misses": 0.80,
    "l2_accesses": 0.90,
    "l2_misses": 2.20,
    "l3_accesses": 1.50,
    "l3_misses": 8.00,
    "l2_dirty_evictions": 2.50,
    "icache_misses": 0.90,
    "uopcache_misses": 0.20,
    "branch_mispredicts": 2.50,
    "itlb_misses": 1.20,
    "dtlb_misses": 1.20,
    "intercluster_transfers": 0.35,
    "prefetches_issued": 0.70,
    "preg_refs": 0.04,
    # Store-queue-full stalls trigger scheduler replays and re-dispatch
    # traffic; this is what makes wrongly gating a store-burst phase
    # (half the SQ entries) expensive in energy as well as performance.
    "sq_full_stall_cycles": 0.50,
}

#: Energy per cluster mode switch (microcode register transfers plus
#: control; Section 3 puts worst-case overheads near 0.1% at 10k
#: granularity, average near 0.01%).
MODE_SWITCH_ENERGY_NJ = 60.0

#: Static/clock power per active cluster, watts. Calibrated (with the
#: other two constants) so low-power mode draws ~35% less average power
#: across the corpus, matching the paper's Section 3 statement.
CLUSTER_STATIC_W = 2.6

#: Fraction of a gated cluster's static power actually saved.
CLUSTER_GATING_SAVINGS = 0.93

#: Always-on power: uncore, shared front end, ring, PLLs — watts.
UNCORE_STATIC_W = 0.9


@dataclasses.dataclass(frozen=True)
class PowerBreakdown:
    """Aggregate energy accounting for one simulated trace segment."""

    static_energy_j: float
    dynamic_energy_j: float
    switch_energy_j: float
    time_s: float

    @property
    def total_energy_j(self) -> float:
        return self.static_energy_j + self.dynamic_energy_j + self.switch_energy_j

    @property
    def average_power_w(self) -> float:
        if self.time_s <= 0.0:
            return 0.0
        return self.total_energy_j / self.time_s


class PowerModel:
    """Event-based power model over base-signal matrices."""

    def __init__(self, machine: MachineConfig | None = None,
                 event_energy_nj: dict[str, float] | None = None,
                 cluster_static_w: float = CLUSTER_STATIC_W,
                 uncore_static_w: float = UNCORE_STATIC_W,
                 gating_savings: float = CLUSTER_GATING_SAVINGS) -> None:
        self.machine = machine or MachineConfig()
        if event_energy_nj is None:
            event_energy_nj = DEFAULT_EVENT_ENERGY_NJ
        self.event_energy_nj = dict(event_energy_nj)
        self.cluster_static_w = cluster_static_w
        self.uncore_static_w = uncore_static_w
        self.gating_savings = gating_savings
        self._weights = np.zeros(0)

    def _weight_vector(self, n_signals: int) -> np.ndarray:
        """Per-signal energy weights aligned to the base-signal order."""
        if self._weights.shape[0] != n_signals:
            weights = np.zeros(n_signals)
            for name, energy in self.event_energy_nj.items():
                weights[signal_index(name)] = energy * 1e-9
            self._weights = weights
        return self._weights

    def static_power_w(self, mode: Mode) -> float:
        """Static plus clock power in a given mode."""
        active = self.cluster_static_w * mode.active_clusters
        if mode is Mode.LOW_POWER:
            gated_residual = self.cluster_static_w * (1.0 - self.gating_savings)
            active += gated_residual
        return self.uncore_static_w + active

    def interval_time_s(self, cycles: np.ndarray) -> np.ndarray:
        """Wall time of each interval in seconds."""
        return cycles / (self.machine.frequency_ghz * 1e9)

    def interval_energy_j(self, result: IntervalResult,
                          modes: np.ndarray | None = None) -> np.ndarray:
        """Energy of each interval in joules.

        Parameters
        ----------
        result:
            Simulation output whose signals and cycles to account.
        modes:
            Optional per-interval mode labels (1 = low power) used when
            the result mixes modes (the adaptive loop builds such
            results); defaults to ``result.mode`` everywhere.
        """
        weights = self._weight_vector(result.signals.shape[1])
        dynamic = result.signals @ weights
        time_s = self.interval_time_s(result.cycles)
        if modes is None:
            static_w = np.full_like(time_s, self.static_power_w(result.mode))
        else:
            modes = np.asarray(modes)
            static_w = np.where(
                modes.astype(bool),
                self.static_power_w(Mode.LOW_POWER),
                self.static_power_w(Mode.HIGH_PERF),
            )
        switches = result.signal("mode_switches")
        return (static_w * time_s + dynamic
                + switches * MODE_SWITCH_ENERGY_NJ * 1e-9)

    def breakdown(self, result: IntervalResult,
                  modes: np.ndarray | None = None) -> PowerBreakdown:
        """Aggregate static/dynamic/switch energy over a result."""
        weights = self._weight_vector(result.signals.shape[1])
        dynamic = float((result.signals @ weights).sum())
        time_s = self.interval_time_s(result.cycles)
        if modes is None:
            static_w = np.full_like(time_s, self.static_power_w(result.mode))
        else:
            modes = np.asarray(modes)
            static_w = np.where(
                modes.astype(bool),
                self.static_power_w(Mode.LOW_POWER),
                self.static_power_w(Mode.HIGH_PERF),
            )
        static = float((static_w * time_s).sum())
        switch = float(result.signal("mode_switches").sum()
                       * MODE_SWITCH_ENERGY_NJ * 1e-9)
        return PowerBreakdown(
            static_energy_j=static,
            dynamic_energy_j=dynamic,
            switch_energy_j=switch,
            time_s=float(time_s.sum()),
        )

    def average_power_w(self, result: IntervalResult,
                        modes: np.ndarray | None = None) -> float:
        """Mean power over a result, in watts."""
        return self.breakdown(result, modes=modes).average_power_w

    def ppw(self, result: IntervalResult,
            modes: np.ndarray | None = None) -> float:
        """Performance per watt = instructions per joule.

        Performance/watt equals (inst/s)/(J/s) = instructions/joule, so
        degraded IPC (longer runtime, more static energy) automatically
        lowers PPW.
        """
        total_inst = result.n_intervals * result.interval_instructions
        energy = float(self.interval_energy_j(result, modes=modes).sum())
        return total_inst / energy
