"""Fast analytical interval performance model.

This is the dataset-scale tier of the simulator. Following interval
analysis (Eyerman/Karkhanis), each telemetry interval's CPI decomposes
into an issue-limited base component plus additive stall components
from branch mispredictions, front-end misses, TLB misses, the memory
hierarchy (divided by exploitable memory-level parallelism), and
store-queue pressure. Mode dependence enters through:

* the effective issue width (7.44 for the 8-wide high-performance mode
  after steering inefficiency, 4.0 for low-power mode);
* halved MSHRs in low-power mode, capping memory-level parallelism;
* halved store-queue entries in low-power mode, which inflates the
  store-queue stall term sharply for store-burst phases;
* an inter-cluster communication tax paid only in high-performance
  mode.

The model also produces every base signal of
:mod:`repro.uarch.signals`, from which the telemetry catalog derives
counters. Per-interval *workload* jitter is drawn once per trace and
shared between modes (both-mode simulations of the same trace see the
same workload, as in the paper's data-collection flow, Figure 3);
measurement noise is added later, per counter, by the telemetry layer.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict

import numpy as np

from repro import rng as rng_mod
from repro.config import (MachineConfig, active_exec_config,
                          batch_sim_enabled, interval_lru_size)
from repro.errors import SimulationError
from repro.exec.simcache import SimCache, default_simcache
from repro.exec.stats import EXEC_STATS
from repro.obs import tracer
from repro.uarch.modes import Mode
from repro.uarch.signals import N_SIGNALS, signal_index
from repro.workloads.generator import PHYSICS_FIELDS, TraceSpec

# Physics field indices (see workloads.generator.PHYSICS_FIELDS).
_F = {name: i for i, name in enumerate(PHYSICS_FIELDS)}

#: Micro-ops per instruction for the synthetic ISA.
UOPS_PER_INSTRUCTION = 1.12

#: Fraction of peak width lost to steering imperfections in 8-wide mode.
STEERING_EFFICIENCY = 0.93

#: Fraction of memory stall cycles that overlap with useful work.
MEMORY_OVERLAP = 0.15

#: Store-queue stall penalty (cycles per store at full pressure). The
#: low-power value reflects the halved store queue: store bursts lose
#: ~40% of their IPC when gated — a clear SLA violation, but one whose
#: low-power telemetry still resembles ordinary latency-bound phases
#: on cache/branch/IPC counters (the Figure-9 blindspot).
SQ_PENALTY_HIGH_PERF = 1.5
SQ_PENALTY_LOW_POWER = 6.5

#: Decode throughput loss per uop-cache miss fraction (cycles/inst).
UOPCACHE_MISS_PENALTY = 0.35

#: Physics fields jittered per interval (relative lognormal).
_JITTERED_FIELDS = (
    "ilp", "l1d_mpki", "l2_mpki", "l3_mpki", "branch_mpki",
    "icache_mpki", "sq_pressure", "mlp",
)

#: Front-end penalty of running on a single cluster: the instruction
#: cache and uop cache are split per cluster (Figure 2), so low-power
#: mode effectively halves front-end capacity.
LOW_POWER_ICACHE_FACTOR = 1.6
LOW_POWER_UOPC_MISS_FACTOR = 1.35

#: Micro-ops the window must refill after a branch mispredict; refill
#: rate scales with issue width, so narrow mode pays slightly more.
MISPREDICT_REFILL_UOPS = 20.0


@dataclasses.dataclass(frozen=True)
class IntervalResult:
    """Per-interval simulation output for one trace in one mode."""

    trace_name: str
    mode: Mode
    ipc: np.ndarray  # (T,)
    cycles: np.ndarray  # (T,)
    signals: np.ndarray  # (T, N_SIGNALS)
    interval_instructions: int
    #: Which simulator tier produced this result: ``"interval"`` (the
    #: analytical pass) or ``"surrogate"`` (the tier-0 learned fast
    #: path). Surrogate results never enter the disk result cache and
    #: are only served from the LRU while the surrogate is enabled.
    tier: str = "interval"

    @property
    def n_intervals(self) -> int:
        return int(self.ipc.shape[0])

    @property
    def total_cycles(self) -> float:
        return float(self.cycles.sum())

    @property
    def mean_ipc(self) -> float:
        """Aggregate IPC over the whole trace."""
        return (self.n_intervals * self.interval_instructions
                / self.total_cycles)

    def signal(self, name: str) -> np.ndarray:
        """One base signal's per-interval values."""
        return self.signals[:, signal_index(name)]


class IntervalModel:
    """Vectorised per-interval performance and telemetry model.

    Results are memoised in a bounded LRU cache keyed by (trace, mode),
    because dataset builders revisit the same traces at several gating
    granularities and in both modes. The bound defaults to the
    ``REPRO_INTERVAL_LRU`` environment variable (see
    :func:`repro.config.interval_lru_size`); hit/miss counts surface in
    the :data:`~repro.exec.stats.EXEC_STATS` report.

    When a :class:`~repro.exec.simcache.SimCache` is attached (or
    ``REPRO_SIMCACHE_DIR`` is set), results additionally persist to a
    content-addressed disk cache shared across processes and runs.
    """

    def __init__(self, machine: MachineConfig | None = None,
                 cache_size: int | None = None,
                 simcache: SimCache | None = None) -> None:
        self.machine = machine or MachineConfig()
        self._cache: "OrderedDict[tuple, IntervalResult]" = OrderedDict()
        self._cache_size = (interval_lru_size() if cache_size is None
                            else cache_size)
        self.simcache = simcache if simcache is not None else (
            default_simcache())
        # Tier-0 learned surrogate (repro.surrogate), built lazily on
        # first use when REPRO_SURROGATE is on. ``_training`` guards
        # the probe pass: while the surrogate trains on this model's
        # own outputs it must see pure interval results.
        self._surrogate = None
        self._surrogate_config: tuple | None = None
        self._surrogate_lock = threading.RLock()
        self._training_tls = threading.local()

    @property
    def _training(self) -> bool:
        """Whether *this thread* is running the surrogate's probe pass.

        Thread-local on purpose: under the thread backend another
        thread must not mistake an in-progress training for "surrogate
        off" and silently take the interval path — it waits on
        :attr:`_surrogate_lock` and scores through the trained tier,
        reaching the same bits as a serial build.
        """
        return getattr(self._training_tls, "active", False)

    @_training.setter
    def _training(self, value: bool) -> None:
        self._training_tls.active = bool(value)

    def __getstate__(self) -> dict:
        """Pickle without the LRU memo or the surrogate tier.

        The memo is a pure accelerator — dropping it can never change a
        result — and shipping up to ``REPRO_INTERVAL_LRU`` cached
        interval tensors per task is exactly the payload bloat the
        execution engine exists to avoid. The surrogate tier is dropped
        for the same reason: workers retrain it deterministically (or
        load it from the shared SimCache), reaching the identical
        accept/fallback decisions.
        """
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        state["_surrogate"] = None
        state["_surrogate_config"] = None
        del state["_surrogate_lock"], state["_training_tls"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._surrogate_lock = threading.RLock()
        self._training_tls = threading.local()

    def _surrogate_tier(self, config):
        """The active surrogate tier, or ``None`` when disabled.

        Rebuilt when the surrogate knobs change between calls; a tier
        whose agreement gate refused stays cached (still ``None``-like:
        its ``score`` returns everything as fallback) so refusal is
        paid once, not per batch.
        """
        if self._training:
            return None
        if not config.surrogate:
            return None
        key = (config.surrogate_threshold, config.surrogate_probes)
        if self._surrogate is None or self._surrogate_config != key:
            with self._surrogate_lock:
                # Double-checked: one thread trains, the rest block
                # here and reuse the published tier.
                if (self._surrogate is None
                        or self._surrogate_config != key):
                    from repro.surrogate import SurrogateTier
                    tier = SurrogateTier(
                        self, threshold=config.surrogate_threshold,
                        n_probes=config.surrogate_probes)
                    tier.train()
                    self._surrogate = tier
                    self._surrogate_config = key
        return self._surrogate

    def _lru_usable(self, result: IntervalResult, surrogate_on: bool,
                    ) -> bool:
        """Whether an LRU entry may be served under the active config.

        Surrogate-tagged entries are only valid while the surrogate is
        on (and never during its own training); otherwise they read as
        misses and the interval pass recomputes and replaces them.
        """
        if result.tier == "interval":
            return True
        return (not self._training) and surrogate_on

    # ------------------------------------------------------------------
    # Mode-dependent machine parameters.
    # ------------------------------------------------------------------
    def effective_width(self, mode: Mode) -> float:
        """Usable issue width in a mode, after steering losses."""
        if mode is Mode.HIGH_PERF:
            return self.machine.width_high_perf * STEERING_EFFICIENCY
        return float(self.machine.width_low_power)

    def mshr_cap(self, mode: Mode) -> float:
        """Outstanding-miss cap: per-cluster MSHRs times active clusters."""
        return self.machine.cluster.mshr_entries * mode.active_clusters

    def sq_entries(self, mode: Mode) -> int:
        """Store-queue entries available in a mode."""
        return self.machine.cluster.store_queue_entries * mode.active_clusters

    def lq_entries(self, mode: Mode) -> int:
        """Load-queue entries available in a mode."""
        return self.machine.cluster.load_queue_entries * mode.active_clusters

    # ------------------------------------------------------------------
    # Core model.
    # ------------------------------------------------------------------
    def _jittered_physics(self, trace: TraceSpec) -> np.ndarray:
        """Physics matrix with per-interval workload jitter applied.

        The jitter stream depends only on the trace (not the mode), so
        high-performance and low-power simulations of the same trace
        observe the same workload, exactly as when the paper replays one
        recorded trace through the simulator in both configurations.
        """
        physics = trace.physics().copy()
        rng = rng_mod.stream(trace.seed, "interval-jitter")
        noise_scale = physics[:, _F["noise_scale"]]
        for field in _JITTERED_FIELDS:
            col = _F[field]
            sigma = 0.03 + 1.2 * noise_scale
            factor = np.exp(rng.normal(0.0, 1.0, physics.shape[0]) * sigma)
            physics[:, col] *= factor
        # Restore invariants disturbed by jitter.
        physics[:, _F["ilp"]] = np.maximum(physics[:, _F["ilp"]], 1.0)
        physics[:, _F["mlp"]] = np.maximum(physics[:, _F["mlp"]], 1.0)
        physics[:, _F["sq_pressure"]] = np.clip(
            physics[:, _F["sq_pressure"]], 0.0, 1.0)
        physics[:, _F["l2_mpki"]] = np.minimum(
            physics[:, _F["l2_mpki"]], physics[:, _F["l1d_mpki"]])
        physics[:, _F["l3_mpki"]] = np.minimum(
            physics[:, _F["l3_mpki"]], physics[:, _F["l2_mpki"]])
        return physics

    def mode_adjusted_physics(self, physics: np.ndarray,
                              mode: Mode) -> np.ndarray:
        """Apply mode-dependent front-end effects to phase physics.

        With cluster 2 gated, only its half of the split instruction
        cache and uop cache is usable, so low-power mode observes more
        front-end misses for the same code footprint. Accepts one
        ``(T, F)`` matrix or a stack ``(P, T, F)`` of them; the
        adjustments are elementwise, so stacked rows carry the same
        bits as per-matrix calls.
        """
        if mode is Mode.HIGH_PERF:
            return physics
        adjusted = physics.copy()
        adjusted[..., _F["icache_mpki"]] *= LOW_POWER_ICACHE_FACTOR
        miss_rate = 1.0 - adjusted[..., _F["uopcache_hit_rate"]]
        adjusted[..., _F["uopcache_hit_rate"]] = np.clip(
            1.0 - miss_rate * LOW_POWER_UOPC_MISS_FACTOR, 0.0, 1.0)
        return adjusted

    def cpi_components(self, physics: np.ndarray, mode: Mode,
                       ) -> dict[str, np.ndarray]:
        """CPI decomposition for each interval (interval analysis).

        ``physics`` must already be mode-adjusted. Returns a dict of
        additive CPI components, all shaped ``(T,)``.
        """
        m = self.machine
        width = self.effective_width(mode)
        ilp = physics[:, _F["ilp"]]
        cpi_base = 1.0 / np.minimum(width, ilp)

        refill = MISPREDICT_REFILL_UOPS / width
        cpi_branch = (physics[:, _F["branch_mpki"]] / 1000.0
                      * (m.branch_mispredict_penalty + refill))
        cpi_frontend = (
            physics[:, _F["icache_mpki"]] / 1000.0 * m.icache_miss_penalty
            + (1.0 - physics[:, _F["uopcache_hit_rate"]])
            * UOPCACHE_MISS_PENALTY
        )
        cpi_tlb = ((physics[:, _F["itlb_mpki"]] + physics[:, _F["dtlb_mpki"]])
                   / 1000.0 * m.tlb_miss_penalty)

        l1d = physics[:, _F["l1d_mpki"]]
        l2 = physics[:, _F["l2_mpki"]]
        l3 = physics[:, _F["l3_mpki"]]
        mem_cost = ((l1d - l2) * m.l2_latency
                    + (l2 - l3) * m.l3_latency
                    + l3 * m.memory_latency) / 1000.0
        mlp_eff = np.clip(physics[:, _F["mlp"]], 1.0, self.mshr_cap(mode))
        cpi_memory = mem_cost / mlp_eff * (1.0 - MEMORY_OVERLAP)

        sq_penalty = (SQ_PENALTY_LOW_POWER if mode is Mode.LOW_POWER
                      else SQ_PENALTY_HIGH_PERF)
        cpi_sq = (physics[:, _F["sq_pressure"]]
                  * physics[:, _F["frac_store"]] * sq_penalty)

        if mode is Mode.HIGH_PERF:
            cpi_xc = np.full_like(cpi_base,
                                  m.intercluster_uop_fraction
                                  * m.intercluster_latency / width
                                  * UOPS_PER_INSTRUCTION)
        else:
            cpi_xc = np.zeros_like(cpi_base)

        return {
            "base": cpi_base,
            "branch": cpi_branch,
            "frontend": cpi_frontend,
            "tlb": cpi_tlb,
            "memory": cpi_memory,
            "store_queue": cpi_sq,
            "intercluster": cpi_xc,
        }

    def simulate(self, trace: TraceSpec, mode: Mode) -> IntervalResult:
        """Simulate one trace in one mode.

        Returns per-interval IPC, cycles, and the full base-signal
        matrix the telemetry catalog consumes.
        """
        config = active_exec_config()
        key = (trace.name, trace.seed, trace.n_intervals, mode)
        cached = self._cache.get(key)
        if cached is not None and self._lru_usable(cached, config.surrogate):
            self._cache.move_to_end(key)
            EXEC_STATS.incr("interval_lru.hit")
            return cached
        EXEC_STATS.incr("interval_lru.miss")
        # Tier-0 fast path: the surrogate decides *before* the disk
        # result tier, so a pair's tier outcome is a pure function of
        # (trace, mode, trained surrogate) — never of LRU or disk
        # state. Accepted results enter the LRU only; the disk result
        # tier stores interval-tier truth exclusively.
        surrogate = self._surrogate_tier(config)
        if surrogate is not None:
            result = surrogate.score_one(trace, mode)
            if result is not None:
                self._remember(key, result)
                return result
        disk_key = None
        if self.simcache is not None:
            disk_key = self.simcache.sim_key(trace, mode, self.machine)
            result = self.simcache.load_result(disk_key)
            if result is not None:
                self._remember(key, result)
                return result
        with EXEC_STATS.stage("interval_simulate"):
            result = self._simulate_uncached(trace, mode)
        self._remember(key, result)
        if disk_key is not None:
            self.simcache.store_result(disk_key, result)
        return result

    def _simulate_uncached(self, trace: TraceSpec,
                           mode: Mode) -> IntervalResult:
        """The actual simulation, bypassing both cache tiers."""
        physics = self.mode_adjusted_physics(
            self._jittered_physics(trace), mode)
        components = self.cpi_components(physics, mode)
        cpi = np.zeros(physics.shape[0])
        for part in components.values():
            cpi = cpi + part
        if np.any(cpi <= 0.0):
            raise SimulationError("non-positive CPI encountered")
        width = self.effective_width(mode)
        ipc = np.minimum(1.0 / cpi, width)
        cpi = 1.0 / ipc
        inst = float(trace.interval_instructions)
        cycles = inst * cpi
        signals = self._signals(trace, physics, components, cpi, cycles, mode)
        return IntervalResult(
            trace_name=trace.name,
            mode=mode,
            ipc=ipc,
            cycles=cycles,
            signals=signals,
            interval_instructions=trace.interval_instructions,
        )

    def _remember(self, key: tuple, result: IntervalResult) -> None:
        """Insert into the bounded LRU memo."""
        self._cache[key] = result
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def simulate_both(self, trace: TraceSpec,
                      ) -> dict[Mode, IntervalResult]:
        """Simulate a trace in both modes (the paper's data recipe)."""
        if batch_sim_enabled():
            batch = self.simulate_batch([trace])
            return {mode: batch[(trace.name, trace.seed,
                                 trace.n_intervals, mode)]
                    for mode in Mode}
        return {mode: self.simulate(trace, mode) for mode in Mode}

    # ------------------------------------------------------------------
    # Batched simulation.
    # ------------------------------------------------------------------
    def simulate_batch(self, traces, modes=None,
                       ) -> dict[tuple, IntervalResult]:
        """Simulate many (trace, mode) pairs in stacked tensor passes.

        Physics matrices for all cache-missing pairs are stacked into
        one ``(P, T, F)`` tensor (grouped by interval count ``T``) and
        the CPI decomposition plus every base signal are computed in a
        single vectorised pass. Every array operation is elementwise,
        so each row of the batch is bit-identical to a scalar
        :meth:`simulate` call (enforced by tests/test_batch_kernels.py).

        Both cache tiers are honoured per pair: LRU and disk hits are
        sliced out up front and only the misses are computed; fresh
        results enter both tiers exactly as in :meth:`simulate`.

        Returns a dict keyed by ``(name, seed, n_intervals, mode)`` —
        the same key :meth:`simulate` memoises under.
        """
        modes_t = tuple(Mode) if modes is None else tuple(modes)
        pairs = []
        seen = set()
        for trace in traces:
            for mode in modes_t:
                key = (trace.name, trace.seed, trace.n_intervals, mode)
                if key not in seen:
                    seen.add(key)
                    pairs.append((key, trace, mode))

        config = active_exec_config()
        results: dict[tuple, IntervalResult] = {}
        lru_misses = []
        for key, trace, mode in pairs:
            cached = self._cache.get(key)
            if cached is not None and self._lru_usable(cached,
                                                       config.surrogate):
                self._cache.move_to_end(key)
                EXEC_STATS.incr("interval_lru.hit")
                results[key] = cached
                continue
            EXEC_STATS.incr("interval_lru.miss")
            lru_misses.append((key, trace, mode, None))
        if not lru_misses:
            return results

        # Tier-0 fast path: the surrogate scores every LRU miss first —
        # *before* the disk result tier — so a pair's tier outcome is a
        # pure function of (trace, mode, trained surrogate), never of
        # cache state. Accepted results enter the LRU but not the disk
        # result tier; only the gated remainder consults the disk and
        # pays the interval pass below, exactly as before.
        surrogate = self._surrogate_tier(config)
        if surrogate is not None:
            accepted, lru_misses = surrogate.score(lru_misses)
            for key, result in accepted.items():
                self._remember(key, result)
                results[key] = result
            if not lru_misses:
                return results

        misses = []
        for key, trace, mode, _ in lru_misses:
            disk_key = None
            if self.simcache is not None:
                disk_key = self.simcache.sim_key(trace, mode, self.machine)
                result = self.simcache.load_result(disk_key)
                if result is not None:
                    self._remember(key, result)
                    results[key] = result
                    continue
            misses.append((key, trace, mode, disk_key))
        if not misses:
            return results

        # Stack pairs with equal interval counts; heterogeneous traces
        # simply land in separate groups.
        groups: dict[int, list] = {}
        for item in misses:
            groups.setdefault(item[1].n_intervals, []).append(item)
        EXEC_STATS.incr("interval_batch.pairs", len(misses))
        EXEC_STATS.observe("interval_batch.miss_rows", len(misses))
        with EXEC_STATS.stage("interval_simulate_batch"), \
                tracer.span("interval.simulate_batch",
                            pairs=len(pairs), misses=len(misses)):
            for _, group in sorted(groups.items()):
                computed = self._simulate_batch_uncached(
                    [(trace, mode) for _, trace, mode, _ in group])
                for (key, trace, mode, disk_key), result in zip(group,
                                                                computed):
                    self._remember(key, result)
                    if disk_key is not None:
                        self.simcache.store_result(disk_key, result)
                    results[key] = result
        return results

    def _simulate_batch_uncached(self, pairs: list[tuple[TraceSpec, Mode]],
                                 ) -> list[IntervalResult]:
        """Compute a batch of same-``T`` pairs, bypassing both caches."""
        modes = [mode for _, mode in pairs]
        # Workload jitter is per trace (shared between modes), so a
        # trace appearing in both modes is jittered once and its matrix
        # reused in both rows — exactly the values the scalar path sees.
        jittered: dict[tuple, np.ndarray] = {}
        rows = []
        for trace, _ in pairs:
            tkey = (trace.name, trace.seed, trace.n_intervals)
            if tkey not in jittered:
                jittered[tkey] = self._jittered_physics(trace)
            rows.append(jittered[tkey])
        physics = np.stack(rows)  # (P, T, F); rows are fresh copies

        # Mode-adjusted front end, applied in place on low-power rows
        # with the same elementwise ops as mode_adjusted_physics.
        lp_rows = np.flatnonzero(
            np.array([mode is Mode.LOW_POWER for mode in modes]))
        if lp_rows.size:
            physics[lp_rows, :, _F["icache_mpki"]] = (
                physics[lp_rows, :, _F["icache_mpki"]]
                * LOW_POWER_ICACHE_FACTOR)
            miss_rate = 1.0 - physics[lp_rows, :, _F["uopcache_hit_rate"]]
            physics[lp_rows, :, _F["uopcache_hit_rate"]] = np.clip(
                1.0 - miss_rate * LOW_POWER_UOPC_MISS_FACTOR, 0.0, 1.0)

        components = self._cpi_components_batch(physics, modes)
        cpi = np.zeros(physics.shape[:2])
        for part in components.values():
            cpi = cpi + part
        if np.any(cpi <= 0.0):
            raise SimulationError("non-positive CPI encountered")
        width = self._mode_col(modes, self.effective_width)
        ipc = np.minimum(1.0 / cpi, width)
        cpi = 1.0 / ipc
        inst = np.array([[float(trace.interval_instructions)]
                         for trace, _ in pairs])
        cycles = inst * cpi
        signals = self._signals_batch(pairs, physics, components, cpi, cycles)
        return [
            IntervalResult(
                trace_name=trace.name,
                mode=mode,
                ipc=ipc[p],
                cycles=cycles[p],
                signals=signals[p],
                interval_instructions=trace.interval_instructions,
            )
            for p, (trace, mode) in enumerate(pairs)
        ]

    @staticmethod
    def _mode_col(modes: list[Mode], fn) -> np.ndarray:
        """Per-mode machine scalars as a broadcastable (P, 1) column."""
        return np.array([[fn(mode)] for mode in modes])

    def _cpi_components_batch(self, physics: np.ndarray, modes: list[Mode],
                              ) -> dict[str, np.ndarray]:
        """:meth:`cpi_components` over a stacked (P, T, F) tensor.

        Per-mode machine scalars broadcast as (P, 1) columns; every
        operation is elementwise, so row ``p`` equals
        ``cpi_components(physics[p], modes[p])`` bit for bit.
        """
        m = self.machine
        width = self._mode_col(modes, self.effective_width)
        ilp = physics[:, :, _F["ilp"]]
        cpi_base = 1.0 / np.minimum(width, ilp)

        refill = MISPREDICT_REFILL_UOPS / width
        cpi_branch = (physics[:, :, _F["branch_mpki"]] / 1000.0
                      * (m.branch_mispredict_penalty + refill))
        cpi_frontend = (
            physics[:, :, _F["icache_mpki"]] / 1000.0 * m.icache_miss_penalty
            + (1.0 - physics[:, :, _F["uopcache_hit_rate"]])
            * UOPCACHE_MISS_PENALTY
        )
        cpi_tlb = ((physics[:, :, _F["itlb_mpki"]]
                    + physics[:, :, _F["dtlb_mpki"]])
                   / 1000.0 * m.tlb_miss_penalty)

        l1d = physics[:, :, _F["l1d_mpki"]]
        l2 = physics[:, :, _F["l2_mpki"]]
        l3 = physics[:, :, _F["l3_mpki"]]
        mem_cost = ((l1d - l2) * m.l2_latency
                    + (l2 - l3) * m.l3_latency
                    + l3 * m.memory_latency) / 1000.0
        mlp_eff = np.clip(physics[:, :, _F["mlp"]], 1.0,
                          self._mode_col(modes, self.mshr_cap))
        cpi_memory = mem_cost / mlp_eff * (1.0 - MEMORY_OVERLAP)

        sq_penalty = np.array(
            [[SQ_PENALTY_LOW_POWER if mode is Mode.LOW_POWER
              else SQ_PENALTY_HIGH_PERF] for mode in modes])
        cpi_sq = (physics[:, :, _F["sq_pressure"]]
                  * physics[:, :, _F["frac_store"]] * sq_penalty)

        xc_const = (m.intercluster_uop_fraction * m.intercluster_latency
                    / self.effective_width(Mode.HIGH_PERF)
                    * UOPS_PER_INSTRUCTION)
        xc_col = np.array([[xc_const if mode is Mode.HIGH_PERF else 0.0]
                           for mode in modes])
        cpi_xc = np.broadcast_to(xc_col, cpi_base.shape).copy()

        return {
            "base": cpi_base,
            "branch": cpi_branch,
            "frontend": cpi_frontend,
            "tlb": cpi_tlb,
            "memory": cpi_memory,
            "store_queue": cpi_sq,
            "intercluster": cpi_xc,
        }

    def _signals_batch(self, pairs: list[tuple[TraceSpec, Mode]],
                       physics: np.ndarray,
                       components: dict[str, np.ndarray], cpi: np.ndarray,
                       cycles: np.ndarray) -> np.ndarray:
        """:meth:`_signals` over a stacked batch -> (P, T, N_SIGNALS).

        The deterministic signal synthesis is one tensor pass; only the
        per-pair measurement-noise draw stays a loop, because each pair
        owns a named RNG stream whose draw order must match the scalar
        path exactly.
        """
        m = self.machine
        modes = [mode for _, mode in pairs]
        n_pairs, t_count = cpi.shape
        inst = np.array([[float(trace.interval_instructions)]
                         for trace, _ in pairs])
        out = np.zeros((n_pairs, t_count, N_SIGNALS))

        def put(name: str, values: np.ndarray | float) -> None:
            out[:, :, signal_index(name)] = values

        ipc = 1.0 / cpi
        frac_load = physics[:, :, _F["frac_load"]]
        frac_store = physics[:, :, _F["frac_store"]]
        frac_branch = physics[:, :, _F["frac_branch"]]
        frac_fp = physics[:, :, _F["frac_fp"]]
        frac_int = 1.0 - (frac_load + frac_store + frac_branch + frac_fp)

        uops = inst * UOPS_PER_INSTRUCTION
        loads = inst * frac_load
        stores = inst * frac_store
        branches = inst * frac_branch
        l1d_misses = inst * physics[:, :, _F["l1d_mpki"]] / 1000.0
        l2_misses = inst * physics[:, :, _F["l2_mpki"]] / 1000.0
        l3_misses = inst * physics[:, :, _F["l3_mpki"]] / 1000.0
        icache_misses = inst * physics[:, :, _F["icache_mpki"]] / 1000.0
        br_miss = inst * physics[:, :, _F["branch_mpki"]] / 1000.0
        dirty = physics[:, :, _F["dirty_frac"]]
        uopc_hit = physics[:, :, _F["uopcache_hit_rate"]]
        width = self._mode_col(modes, self.effective_width)

        put("cycles", cycles)
        put("instructions", inst)
        put("uops_issued", uops + br_miss * width * 2.0)  # incl. wrong path
        put("uops_retired", uops)
        put("loads_retired", loads)
        put("stores_retired", stores)
        put("branches_retired", branches)
        put("fp_ops_retired", inst * frac_fp)
        put("int_ops_retired", inst * frac_int)
        put("l1d_reads", loads)
        put("l1d_writes", stores)
        put("l1d_misses", l1d_misses)
        put("l1d_hits", np.maximum(loads + stores - l1d_misses, 0.0))
        l2_accesses = l1d_misses + icache_misses
        put("l2_accesses", l2_accesses)
        put("l2_misses", l2_misses)
        put("l2_hits", np.maximum(l2_accesses - l2_misses, 0.0))
        put("l3_accesses", l2_misses)
        put("l3_misses", l3_misses)
        put("l3_hits", np.maximum(l2_misses - l3_misses, 0.0))
        put("memory_reads", l3_misses)
        l2_evictions = l2_misses  # each fill evicts in steady state
        put("l2_evictions", l2_evictions)
        put("l2_silent_evictions", l2_evictions * (1.0 - dirty))
        put("l2_dirty_evictions", l2_evictions * dirty)
        put("branch_mispredicts", br_miss)
        put("wrong_path_uops",
            br_miss * width * m.branch_mispredict_penalty * 0.5)
        machine_clears = inst * 2e-5
        put("pipeline_flushes", br_miss + machine_clears)
        put("machine_clears", machine_clears)
        put("icache_misses", icache_misses)
        fetch_blocks = inst / 8.0
        put("icache_hits", np.maximum(fetch_blocks - icache_misses, 0.0))
        put("uopcache_hits", uops * uopc_hit)
        put("uopcache_misses", uops * (1.0 - uopc_hit))
        put("itlb_misses", inst * physics[:, :, _F["itlb_mpki"]] / 1000.0)
        put("dtlb_misses", inst * physics[:, :, _F["dtlb_mpki"]] / 1000.0)

        # Stall accounting from the CPI decomposition.
        stall_share = np.maximum(cpi - components["base"], 0.0) / cpi
        put("stall_cycles", cycles * stall_share)
        fe_share = (components["branch"] + components["frontend"]) / cpi
        put("frontend_stall_cycles", cycles * fe_share)
        mem_share = components["memory"] / cpi
        put("memory_stall_cycles", cycles * mem_share)
        sq_share = components["store_queue"] / cpi
        put("sq_full_stall_cycles", cycles * sq_share)
        dep_share = np.maximum(
            components["base"] - 1.0 / width, 0.0) / cpi
        put("dep_stall_cycles", cycles * dep_share)
        put("backend_stall_cycles", cycles * (mem_share + sq_share + dep_share))

        # Occupancies via Little's law (summed entries x cycles).
        ilp = physics[:, :, _F["ilp"]]
        put("uops_ready", np.minimum(ilp, width) * cycles)
        avg_inst_latency = 5.0 + (components["memory"]
                                  * physics[:, :, _F["mlp"]]
                                  / np.maximum(frac_load, 0.02))
        in_flight = np.minimum(ipc * avg_inst_latency, m.rob_entries)
        put("rob_occupancy", in_flight * cycles)
        sched_total = np.array(
            [[m.cluster.scheduler_entries * mode.active_clusters]
             for mode in modes])
        sched_occ = np.minimum(in_flight * 0.45, sched_total)
        put("scheduler_occupancy", sched_occ * cycles)
        put("uops_stalled_dep",
            np.maximum(sched_occ - np.minimum(ilp, width), 0.0) * cycles)
        store_residency = 4.0 + physics[:, :, _F["sq_pressure"]] * 44.0
        sq_occ = np.minimum(frac_store * ipc * store_residency,
                            self._mode_col(modes, self.sq_entries))
        put("sq_occupancy", sq_occ * cycles)
        load_residency = 4.0 + (components["memory"] * 1000.0
                                / np.maximum(frac_load * 1000.0, 1.0))
        lq_occ = np.minimum(frac_load * ipc * load_residency,
                            self._mode_col(modes, self.lq_entries))
        put("lq_occupancy", lq_occ * cycles)
        # MSHR occupancy reflects exploited memory-level parallelism:
        # outstanding misses while memory-bound, capped by the MSHRs.
        mlp_exploited = np.clip(physics[:, :, _F["mlp"]], 1.0,
                                self._mode_col(modes, self.mshr_cap))
        put("mshr_occupancy", mlp_exploited * mem_share * cycles)

        put("preg_refs", uops * 1.9)
        put("preg_allocs", uops * 0.85)
        hp_col = np.array([[mode is Mode.HIGH_PERF] for mode in modes])
        put("intercluster_transfers",
            np.where(hp_col, uops * m.intercluster_uop_fraction, 0.0))
        put("mode_switches", 0.0)
        prefetches = l2_misses * 0.6
        put("prefetches_issued", prefetches)
        put("prefetch_hits", prefetches * 0.5)
        put("fp_divides", inst * frac_fp * 0.05)
        put("int_muls", inst * frac_int * 0.08)
        put("mem_bandwidth_bytes",
            (l3_misses + l2_evictions * dirty) * m.line_bytes)
        put("store_buffer_drains",
            stores * physics[:, :, _F["sq_pressure"]] * 0.1)

        # Per-interval sampling noise on event counts. Each pair owns a
        # named RNG stream, so the (T, N_SIGNALS) draw stays per pair.
        exact = [signal_index("cycles"), signal_index("instructions")]
        result = np.empty_like(out)
        for p, (trace, mode) in enumerate(pairs):
            rng = rng_mod.stream(trace.seed, "signal-noise", mode.value)
            noise_sigma = (0.01
                           + physics[p, :, _F["noise_scale"]][:, None] * 0.3)
            noise = np.exp(rng.normal(0.0, 1.0, (t_count, N_SIGNALS))
                           * noise_sigma)
            noise[:, exact] = 1.0
            result[p] = out[p] * noise
        return result

    # ------------------------------------------------------------------
    # Base-signal synthesis.
    # ------------------------------------------------------------------
    def _signals(self, trace: TraceSpec, physics: np.ndarray,
                 components: dict[str, np.ndarray], cpi: np.ndarray,
                 cycles: np.ndarray, mode: Mode) -> np.ndarray:
        """Emit all base signals for each interval."""
        m = self.machine
        t_count = physics.shape[0]
        inst = float(trace.interval_instructions)
        out = np.zeros((t_count, N_SIGNALS))

        def put(name: str, values: np.ndarray | float) -> None:
            out[:, signal_index(name)] = values

        ipc = 1.0 / cpi
        frac_load = physics[:, _F["frac_load"]]
        frac_store = physics[:, _F["frac_store"]]
        frac_branch = physics[:, _F["frac_branch"]]
        frac_fp = physics[:, _F["frac_fp"]]
        frac_int = 1.0 - (frac_load + frac_store + frac_branch + frac_fp)

        uops = inst * UOPS_PER_INSTRUCTION
        loads = inst * frac_load
        stores = inst * frac_store
        branches = inst * frac_branch
        l1d_misses = inst * physics[:, _F["l1d_mpki"]] / 1000.0
        l2_misses = inst * physics[:, _F["l2_mpki"]] / 1000.0
        l3_misses = inst * physics[:, _F["l3_mpki"]] / 1000.0
        icache_misses = inst * physics[:, _F["icache_mpki"]] / 1000.0
        br_miss = inst * physics[:, _F["branch_mpki"]] / 1000.0
        dirty = physics[:, _F["dirty_frac"]]
        uopc_hit = physics[:, _F["uopcache_hit_rate"]]
        width = self.effective_width(mode)

        put("cycles", cycles)
        put("instructions", inst)
        put("uops_issued", uops + br_miss * width * 2.0)  # incl. wrong path
        put("uops_retired", uops)
        put("loads_retired", loads)
        put("stores_retired", stores)
        put("branches_retired", branches)
        put("fp_ops_retired", inst * frac_fp)
        put("int_ops_retired", inst * frac_int)
        put("l1d_reads", loads)
        put("l1d_writes", stores)
        put("l1d_misses", l1d_misses)
        put("l1d_hits", np.maximum(loads + stores - l1d_misses, 0.0))
        l2_accesses = l1d_misses + icache_misses
        put("l2_accesses", l2_accesses)
        put("l2_misses", l2_misses)
        put("l2_hits", np.maximum(l2_accesses - l2_misses, 0.0))
        put("l3_accesses", l2_misses)
        put("l3_misses", l3_misses)
        put("l3_hits", np.maximum(l2_misses - l3_misses, 0.0))
        put("memory_reads", l3_misses)
        l2_evictions = l2_misses  # each fill evicts in steady state
        put("l2_evictions", l2_evictions)
        put("l2_silent_evictions", l2_evictions * (1.0 - dirty))
        put("l2_dirty_evictions", l2_evictions * dirty)
        put("branch_mispredicts", br_miss)
        put("wrong_path_uops",
            br_miss * width * m.branch_mispredict_penalty * 0.5)
        machine_clears = inst * 2e-5
        put("pipeline_flushes", br_miss + machine_clears)
        put("machine_clears", machine_clears)
        put("icache_misses", icache_misses)
        fetch_blocks = inst / 8.0
        put("icache_hits", np.maximum(fetch_blocks - icache_misses, 0.0))
        put("uopcache_hits", uops * uopc_hit)
        put("uopcache_misses", uops * (1.0 - uopc_hit))
        put("itlb_misses", inst * physics[:, _F["itlb_mpki"]] / 1000.0)
        put("dtlb_misses", inst * physics[:, _F["dtlb_mpki"]] / 1000.0)

        # Stall accounting from the CPI decomposition.
        stall_share = np.maximum(cpi - components["base"], 0.0) / cpi
        put("stall_cycles", cycles * stall_share)
        fe_share = (components["branch"] + components["frontend"]) / cpi
        put("frontend_stall_cycles", cycles * fe_share)
        mem_share = components["memory"] / cpi
        put("memory_stall_cycles", cycles * mem_share)
        sq_share = components["store_queue"] / cpi
        put("sq_full_stall_cycles", cycles * sq_share)
        dep_share = np.maximum(
            components["base"] - 1.0 / width, 0.0) / cpi
        put("dep_stall_cycles", cycles * dep_share)
        put("backend_stall_cycles", cycles * (mem_share + sq_share + dep_share))

        # Occupancies via Little's law (summed entries x cycles).
        ilp = physics[:, _F["ilp"]]
        put("uops_ready", np.minimum(ilp, width) * cycles)
        avg_inst_latency = 5.0 + (components["memory"] * physics[:, _F["mlp"]]
                                  / np.maximum(frac_load, 0.02))
        in_flight = np.minimum(ipc * avg_inst_latency, m.rob_entries)
        put("rob_occupancy", in_flight * cycles)
        sched_total = (m.cluster.scheduler_entries * mode.active_clusters)
        sched_occ = np.minimum(in_flight * 0.45, sched_total)
        put("scheduler_occupancy", sched_occ * cycles)
        put("uops_stalled_dep",
            np.maximum(sched_occ - np.minimum(ilp, width), 0.0) * cycles)
        store_residency = 4.0 + physics[:, _F["sq_pressure"]] * 44.0
        sq_occ = np.minimum(frac_store * ipc * store_residency,
                            self.sq_entries(mode))
        put("sq_occupancy", sq_occ * cycles)
        load_residency = 4.0 + (components["memory"] * 1000.0
                                / np.maximum(frac_load * 1000.0, 1.0))
        lq_occ = np.minimum(frac_load * ipc * load_residency,
                            self.lq_entries(mode))
        put("lq_occupancy", lq_occ * cycles)
        # MSHR occupancy reflects exploited memory-level parallelism:
        # outstanding misses while memory-bound, capped by the MSHRs.
        mlp_exploited = np.clip(physics[:, _F["mlp"]], 1.0,
                                self.mshr_cap(mode))
        put("mshr_occupancy", mlp_exploited * mem_share * cycles)

        put("preg_refs", uops * 1.9)
        put("preg_allocs", uops * 0.85)
        if mode is Mode.HIGH_PERF:
            put("intercluster_transfers",
                uops * m.intercluster_uop_fraction)
        put("mode_switches", 0.0)
        prefetches = l2_misses * 0.6
        put("prefetches_issued", prefetches)
        put("prefetch_hits", prefetches * 0.5)
        put("fp_divides", inst * frac_fp * 0.05)
        put("int_muls", inst * frac_int * 0.08)
        put("mem_bandwidth_bytes",
            (l3_misses + l2_evictions * dirty) * m.line_bytes)
        put("store_buffer_drains",
            stores * physics[:, _F["sq_pressure"]] * 0.1)

        # Per-interval sampling noise on event counts (not on cycles or
        # instructions, which the hardware counts exactly).
        rng = rng_mod.stream(trace.seed, "signal-noise", mode.value)
        noise_sigma = 0.01 + physics[:, _F["noise_scale"]][:, None] * 0.3
        noise = np.exp(rng.normal(0.0, 1.0, out.shape) * noise_sigma)
        exact = [signal_index("cycles"), signal_index("instructions")]
        noise[:, exact] = 1.0
        return out * noise
