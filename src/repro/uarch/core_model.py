"""Cycle-level model of the two-cluster out-of-order core.

A trace-driven dataflow-with-resources simulator in the style used for
fast industrial timing studies: every micro-op's fetch, dispatch,
issue, completion and retirement cycles are computed in program order
subject to

* front-end bandwidth (split per cluster; halved in low-power mode)
  and mispredict redirect/refill;
* ROB, per-cluster scheduler, load-queue, store-queue and MSHR
  capacity (rings keyed by the cycle each older entry frees);
* per-cluster execution ports per uop class;
* dataflow dependencies with an inter-cluster bypass penalty when a
  value crosses clusters in high-performance mode;
* in-order retirement at the retire width.

The cluster-gating microcode flow is modelled by
:meth:`ClusteredCoreModel.mode_switch_cycles`. Validation tests check
this tier agrees with the fast interval model
(:mod:`repro.uarch.interval_model`) on IPC across phases and on the
low-power/high-performance ratio that drives gating labels.
"""

from __future__ import annotations

import dataclasses
import heapq

import numpy as np

from repro import rng as rng_mod
from repro.config import MachineConfig, cycle_kernel
from repro.errors import SimulationError
from repro.obs import tracer
from repro.uarch.isa import (
    BASE_LATENCY,
    MEM_DRAM,
    MEM_L2,
    MEM_L3,
    UopStream,
    UopType,
    synthesize_uops,
)
from repro.uarch.modes import Mode
from repro.workloads.phases import PhaseInstance

#: Extra decode/rename pipeline depth between fetch and dispatch.
FRONTEND_DEPTH = 5

#: Cycles to refill the front end after a mispredict redirect.
REDIRECT_REFILL = 3

#: Uops per steering chunk: large enough that most dependence chains
#: stay within one cluster, small enough to balance cluster load.
STEERING_CHUNK = 16

#: Maximum tolerated cluster-load imbalance (uops) before steering
#: overrides dependence locality.
STEERING_IMBALANCE = 12

#: Uops per wavefront chunk in the SoA kernel. Decoded numpy arrays
#: are materialised into plain Python lists one chunk at a time, which
#: bounds the transient list footprint while the scoreboard state
#: (rings, pools, front end, retirement) carries across chunks.
WAVEFRONT_CHUNK = 4096


@dataclasses.dataclass(frozen=True)
class CycleSimResult:
    """Aggregate outcome of one cycle-level run."""

    mode: Mode
    n_uops: int
    cycles: float
    branch_mispredicts: int
    loads: int
    stores: int
    l2_accesses: int
    l3_accesses: int
    dram_accesses: int
    intercluster_transfers: int

    @property
    def ipc(self) -> float:
        """Retired micro-ops per cycle."""
        if self.cycles <= 0:
            raise SimulationError("no cycles simulated")
        return self.n_uops / self.cycles


class _UnitPool:
    """A pool of pipelined execution units; pick the earliest free.

    ``free`` is a min-heap of unit-free times. Only the multiset of
    times matters: issuing always takes the minimum (``free[0]``) and
    replaces it with ``at + 1``, so the heap is observationally — and
    bit- — identical to the former linear scan while O(log units).
    """

    __slots__ = ("free",)

    def __init__(self, n_units: int) -> None:
        # All-equal entries already satisfy the heap invariant.
        self.free = [0.0] * max(n_units, 1)

    def issue(self, ready: float) -> float:
        """Issue at the earliest cycle >= ready with a free unit."""
        best_time = self.free[0]
        at = ready if ready > best_time else best_time
        heapq.heapreplace(self.free, at + 1.0)
        return at


class _Ring:
    """Capacity ring: entry ``i`` waits for entry ``i - size`` to free."""

    __slots__ = ("times", "size", "count")

    def __init__(self, size: int) -> None:
        self.size = max(size, 1)
        self.times = [0.0] * self.size
        self.count = 0

    def reserve(self, at: float) -> float:
        """Earliest cycle >= at when a slot is free (older slot reuse)."""
        slot = self.count % self.size
        gate = self.times[slot]
        self.count += 1
        return at if at > gate else gate

    def release(self, frees_at: float) -> None:
        """Record when the most recently reserved slot frees."""
        slot = (self.count - 1) % self.size
        self.times[slot] = frees_at


class ClusteredCoreModel:
    """Cycle-level two-cluster core for one operating mode.

    ``kernel`` selects between two bit-identical implementations of
    :meth:`execute`: ``"soa"`` (default; structure-of-arrays decode +
    chunked wavefront scoreboard) and ``"reference"`` (the original
    per-uop loop, kept as ground truth). Subclasses that override the
    outcome hooks automatically fall back to the reference loop, since
    the SoA decode pass assumes the trace-annotated outcomes.
    """

    def __init__(self, machine: MachineConfig | None = None,
                 mode: Mode = Mode.HIGH_PERF,
                 kernel: str | None = None) -> None:
        self.machine = machine or MachineConfig()
        self.mode = mode
        self.kernel = kernel if kernel is not None else cycle_kernel()
        if self.kernel not in ("soa", "reference"):
            raise ValueError(
                f"kernel must be 'soa' or 'reference', got {self.kernel!r}")

    @property
    def active_clusters(self) -> int:
        return self.mode.active_clusters

    def mode_switch_cycles(self, live_registers: int) -> float:
        """Microcode cost of gating cluster 2 (Section 3)."""
        live = min(live_registers, self.machine.max_register_transfers)
        return (self.machine.mode_switch_base_cycles
                + live / self.machine.width_low_power)

    # -- Outcome hooks: the trace-driven (annotated) tier reads the
    # -- stream's annotations; the structural tier overrides these to
    # -- consult real caches and branch predictors.
    def load_outcome(self, stream: UopStream, i: int) -> int:
        """Memory-hierarchy level for load ``i`` (MEM_L1..MEM_DRAM)."""
        return int(stream.mem_level[i])

    def store_outcome(self, stream: UopStream, i: int) -> None:
        """Observe store ``i`` (structural tier updates the caches)."""

    def branch_outcome(self, stream: UopStream, i: int) -> bool:
        """Whether branch ``i`` mispredicts."""
        return bool(stream.mispredicted[i])

    def _hooks_are_default(self) -> bool:
        """Whether outcomes come straight from the stream annotations."""
        cls = type(self)
        return (cls.load_outcome is ClusteredCoreModel.load_outcome
                and cls.store_outcome is ClusteredCoreModel.store_outcome
                and cls.branch_outcome is ClusteredCoreModel.branch_outcome)

    # ------------------------------------------------------------------
    def execute(self, stream: UopStream) -> CycleSimResult:
        """Run a micro-op stream to completion; return timing/events."""
        if self.kernel == "soa" and self._hooks_are_default():
            return self._execute_soa(stream)
        return self._execute_reference(stream)

    def _execute_reference(self, stream: UopStream) -> CycleSimResult:
        """The original per-uop loop: ground truth for the SoA kernel."""
        machine = self.machine
        cluster_cfg = machine.cluster
        n_clusters = self.active_clusters
        fe_width = cluster_cfg.issue_width * n_clusters
        n = stream.n_uops

        rob = _Ring(machine.rob_entries)
        schedulers = [_Ring(cluster_cfg.scheduler_entries)
                      for _ in range(n_clusters)]
        load_queues = [_Ring(cluster_cfg.load_queue_entries)
                       for _ in range(n_clusters)]
        store_queues = [_Ring(cluster_cfg.store_queue_entries)
                        for _ in range(n_clusters)]
        mshrs = [_Ring(cluster_cfg.mshr_entries) for _ in range(n_clusters)]
        pools = []
        for _ in range(n_clusters):
            pools.append({
                int(UopType.ALU): _UnitPool(cluster_cfg.alu_units),
                int(UopType.MUL): _UnitPool(max(cluster_cfg.alu_units // 2,
                                                1)),
                int(UopType.FP): _UnitPool(cluster_cfg.fpu_units),
                int(UopType.LOAD): _UnitPool(cluster_cfg.load_ports),
                int(UopType.STORE): _UnitPool(cluster_cfg.store_ports),
                int(UopType.BRANCH): _UnitPool(cluster_cfg.alu_units),
            })

        complete = np.zeros(n)
        cluster_of = np.zeros(n, dtype=np.int8)
        cluster_load = [0] * n_clusters
        # The MEU drains one retired store per interval; a lone MEU in
        # low-power mode drains more slowly, so store bursts back up
        # the halved store queue — the physics behind the blindspot.
        drain_interval = 1.0 if n_clusters > 1 else 2.5
        last_drain = [0.0] * n_clusters
        retire_gate = 0.0
        retire_in_cycle = 0
        fe_cycle = 0.0
        fe_in_cycle = 0
        redirect_until = 0.0

        mem_latency_by_level = {
            MEM_L2: machine.l2_latency,
            MEM_L3: machine.l3_latency,
            MEM_DRAM: machine.memory_latency,
        }

        types = stream.types
        src1 = stream.src1
        src2 = stream.src2

        branch_misses = 0
        loads = stores = 0
        l2 = l3 = dram = 0
        xc_transfers = 0

        for i in range(n):
            # ---- Fetch: bandwidth + redirect. ----
            start = redirect_until
            if start < fe_cycle:
                start = fe_cycle
            if start > fe_cycle:
                fe_cycle = start
                fe_in_cycle = 0
            fetch = fe_cycle
            fe_in_cycle += 1
            if fe_in_cycle >= fe_width:
                fe_cycle += 1.0
                fe_in_cycle = 0

            # ---- Cluster steering: MOD-N fetch-group round robin,
            # following the producer only when it is recent enough for
            # the bypass to matter (Baniasadi/Moshovos-style heuristic).
            # Following every producer would collapse the whole stream
            # onto one cluster.
            if n_clusters == 1:
                cluster = 0
            else:
                if src1[i] >= 0 and i - src1[i] < STEERING_CHUNK:
                    cluster = int(cluster_of[src1[i]])
                else:
                    cluster = (i // STEERING_CHUNK) % n_clusters
                # Load-balance override: following producers alone
                # would pin every chain to the seed cluster.
                lightest = min(range(n_clusters),
                               key=cluster_load.__getitem__)
                if (cluster_load[cluster] - cluster_load[lightest]
                        > STEERING_IMBALANCE):
                    cluster = lightest
                cluster_load[cluster] += 1
            cluster_of[i] = cluster

            # ---- Dispatch: pipeline depth + structural capacity. ----
            dispatch = fetch + FRONTEND_DEPTH
            dispatch = rob.reserve(dispatch)
            dispatch = schedulers[cluster].reserve(dispatch)
            uop_type = int(types[i])
            if uop_type == int(UopType.LOAD):
                dispatch = load_queues[cluster].reserve(dispatch)
            elif uop_type == int(UopType.STORE):
                dispatch = store_queues[cluster].reserve(dispatch)

            # ---- Ready: dataflow with inter-cluster bypass. The
            # bypass penalty binds only for *fresh* values; older
            # results have already propagated to the register file.
            ready = dispatch + 1.0
            for src in (src1[i], src2[i]):
                if src < 0:
                    continue
                avail = complete[src]
                if cluster_of[src] != cluster:
                    xc_transfers += 1
                    if avail > dispatch - 8.0:
                        avail += machine.intercluster_latency
                if avail > ready:
                    ready = avail

            # ---- Issue and execute. ----
            issue_at = pools[cluster][uop_type].issue(ready)
            latency = float(BASE_LATENCY[UopType(uop_type)])
            if uop_type == int(UopType.LOAD):
                loads += 1
                level = self.load_outcome(stream, i)
                if level >= MEM_L2:
                    issue_at = mshrs[cluster].reserve(issue_at)
                    latency = float(mem_latency_by_level[level])
                    mshrs[cluster].release(issue_at + latency)
                    if level == MEM_L2:
                        l2 += 1
                    elif level == MEM_L3:
                        l3 += 1
                    else:
                        dram += 1
            elif uop_type == int(UopType.STORE):
                stores += 1
                self.store_outcome(stream, i)
            done = issue_at + latency
            complete[i] = done
            schedulers[cluster].release(issue_at + 1.0)

            # ---- Branch resolution. ----
            if (uop_type == int(UopType.BRANCH)
                    and self.branch_outcome(stream, i)):
                branch_misses += 1
                redirect = done + machine.branch_mispredict_penalty
                if redirect > redirect_until:
                    redirect_until = redirect
                    fe_cycle = redirect + REDIRECT_REFILL
                    fe_in_cycle = 0

            # ---- Retire in order at retire width. ----
            at = done
            if at < retire_gate:
                at = retire_gate
            if at == retire_gate:
                retire_in_cycle += 1
                if retire_in_cycle >= machine.retire_width:
                    retire_gate += 1.0
                    retire_in_cycle = 0
            else:
                retire_gate = at
                retire_in_cycle = 1
            rob.release(at)
            if uop_type == int(UopType.LOAD):
                load_queues[cluster].release(at)
            elif uop_type == int(UopType.STORE):
                # Stores drain from the SQ serially after retirement.
                drain_at = max(at + 2.0,
                               last_drain[cluster] + drain_interval)
                last_drain[cluster] = drain_at
                store_queues[cluster].release(drain_at)

        total_cycles = max(float(retire_gate), float(complete.max())) + 1.0
        return CycleSimResult(
            mode=self.mode,
            n_uops=n,
            cycles=total_cycles,
            branch_mispredicts=branch_misses,
            loads=loads,
            stores=stores,
            l2_accesses=l2,
            l3_accesses=l3,
            dram_accesses=dram,
            intercluster_transfers=xc_transfers,
        )

    def _execute_soa(self, stream: UopStream) -> CycleSimResult:
        """Structure-of-arrays scoreboard kernel.

        Three passes, bit-identical to :meth:`_execute_reference`:

        1. *Decode* (vectorized): uop classes, per-uop execution
           latency with the memory hierarchy folded in for loads that
           miss the L1, MSHR need, and branch-redirect flags are
           computed for the whole stream with array ops.
        2. *Events* (vectorized): load/store/mispredict/L2/L3/DRAM
           counts come from mask reductions instead of per-uop
           increments.
        3. *Timing* (chunked wavefront): the serial recurrence — ring
           reservations, unit-pool issue, dataflow with the
           inter-cluster bypass, retirement — runs over plain Python
           lists materialised one :data:`WAVEFRONT_CHUNK` at a time,
           with ring state inlined as slot-indexed lists (no per-call
           method dispatch) and unit pools as raw heaps.

        All floating-point operations happen in the same order and on
        the same IEEE doubles as the reference loop, so results match
        bit for bit (enforced by tests/test_batch_kernels.py).
        """
        n = stream.n_uops
        if n == 0:
            return self._execute_reference(stream)
        machine = self.machine
        cluster_cfg = machine.cluster
        n_clusters = self.active_clusters
        fe_width = cluster_cfg.issue_width * n_clusters

        types = stream.types.astype(np.int64, copy=False)
        src1 = stream.src1.astype(np.int64, copy=False)
        src2 = stream.src2.astype(np.int64, copy=False)
        mem_level = stream.mem_level.astype(np.int64, copy=False)

        t_load = int(UopType.LOAD)
        t_store = int(UopType.STORE)

        # ---- Decode pass (vectorized). ----
        base_lat = np.zeros(len(UopType))
        for uop_t, lat in BASE_LATENCY.items():
            base_lat[int(uop_t)] = float(lat)
        latency = base_lat[types]
        is_load = types == t_load
        needs_mshr = is_load & (mem_level >= MEM_L2)
        mem_lat = np.zeros(MEM_DRAM + 1)
        mem_lat[MEM_L2] = float(machine.l2_latency)
        mem_lat[MEM_L3] = float(machine.l3_latency)
        mem_lat[MEM_DRAM] = float(machine.memory_latency)
        latency = np.where(
            needs_mshr, mem_lat[np.clip(mem_level, 0, MEM_DRAM)], latency)
        redirects = (types == int(UopType.BRANCH)) & stream.mispredicted

        # ---- Event pass (vectorized). ----
        loads = int(np.count_nonzero(is_load))
        stores = int(np.count_nonzero(types == t_store))
        branch_misses = int(np.count_nonzero(redirects))
        l2 = int(np.count_nonzero(is_load & (mem_level == MEM_L2)))
        l3 = int(np.count_nonzero(is_load & (mem_level == MEM_L3)))
        dram = int(np.count_nonzero(is_load & (mem_level == MEM_DRAM)))

        # ---- Steering candidates (vectorized). ----
        multi = n_clusters > 1
        if multi:
            idx = np.arange(n)
            follow_np = np.where(
                (src1 >= 0) & (idx - src1 < STEERING_CHUNK), src1, -1)
            rr_np = (idx // STEERING_CHUNK) % n_clusters

        # ---- Timing scoreboard state (inlined rings + raw heaps). ----
        rob_size = max(machine.rob_entries, 1)
        sched_size = max(cluster_cfg.scheduler_entries, 1)
        lq_size = max(cluster_cfg.load_queue_entries, 1)
        sq_size = max(cluster_cfg.store_queue_entries, 1)
        mshr_size = max(cluster_cfg.mshr_entries, 1)
        rob_times = [0.0] * rob_size
        sched_times = [[0.0] * sched_size for _ in range(n_clusters)]
        lq_times = [[0.0] * lq_size for _ in range(n_clusters)]
        sq_times = [[0.0] * sq_size for _ in range(n_clusters)]
        mshr_times = [[0.0] * mshr_size for _ in range(n_clusters)]
        sched_count = [0] * n_clusters
        lq_count = [0] * n_clusters
        sq_count = [0] * n_clusters
        mshr_count = [0] * n_clusters
        pool_units = {
            int(UopType.ALU): cluster_cfg.alu_units,
            int(UopType.MUL): max(cluster_cfg.alu_units // 2, 1),
            int(UopType.FP): cluster_cfg.fpu_units,
            int(UopType.LOAD): cluster_cfg.load_ports,
            int(UopType.STORE): cluster_cfg.store_ports,
            int(UopType.BRANCH): cluster_cfg.alu_units,
        }
        pools = [[[0.0] * max(pool_units[t], 1) for t in range(len(UopType))]
                 for _ in range(n_clusters)]

        complete = [0.0] * n
        cluster_of = [0] * n
        cluster_load = [0] * n_clusters
        drain_interval = 1.0 if multi else 2.5
        last_drain = [0.0] * n_clusters
        retire_gate = 0.0
        retire_in_cycle = 0
        fe_cycle = 0.0
        fe_in_cycle = 0
        redirect_until = 0.0
        max_done = 0.0
        xc_transfers = 0
        xc_latency = float(machine.intercluster_latency)
        penalty = float(machine.branch_mispredict_penalty)
        refill = float(REDIRECT_REFILL)
        retire_width = machine.retire_width
        heapreplace = heapq.heapreplace

        for lo in range(0, n, WAVEFRONT_CHUNK):
            hi = min(lo + WAVEFRONT_CHUNK, n)
            c_type = types[lo:hi].tolist()
            c_src1 = src1[lo:hi].tolist()
            c_src2 = src2[lo:hi].tolist()
            c_lat = latency[lo:hi].tolist()
            c_mshr = needs_mshr[lo:hi].tolist()
            c_redirect = redirects[lo:hi].tolist()
            if multi:
                c_follow = follow_np[lo:hi].tolist()
                c_rr = rr_np[lo:hi].tolist()
            for k in range(hi - lo):
                i = lo + k
                # ---- Fetch: bandwidth + redirect. ----
                if redirect_until > fe_cycle:
                    fe_cycle = redirect_until
                    fe_in_cycle = 0
                fetch = fe_cycle
                fe_in_cycle += 1
                if fe_in_cycle >= fe_width:
                    fe_cycle += 1.0
                    fe_in_cycle = 0

                # ---- Cluster steering (same heuristic as reference).
                if multi:
                    f = c_follow[k]
                    cluster = cluster_of[f] if f >= 0 else c_rr[k]
                    if n_clusters == 2:
                        lightest = (0 if cluster_load[0] <= cluster_load[1]
                                    else 1)
                    else:
                        lightest = min(range(n_clusters),
                                       key=cluster_load.__getitem__)
                    if (cluster_load[cluster] - cluster_load[lightest]
                            > STEERING_IMBALANCE):
                        cluster = lightest
                    cluster_load[cluster] += 1
                else:
                    cluster = 0
                cluster_of[i] = cluster

                # ---- Dispatch: pipeline depth + structural capacity.
                dispatch = fetch + FRONTEND_DEPTH
                rob_slot = i % rob_size
                gate = rob_times[rob_slot]
                if gate > dispatch:
                    dispatch = gate
                st = sched_times[cluster]
                sched_slot = sched_count[cluster] % sched_size
                sched_count[cluster] += 1
                gate = st[sched_slot]
                if gate > dispatch:
                    dispatch = gate
                ut = c_type[k]
                if ut == t_load:
                    qt = lq_times[cluster]
                    q_slot = lq_count[cluster] % lq_size
                    lq_count[cluster] += 1
                    gate = qt[q_slot]
                    if gate > dispatch:
                        dispatch = gate
                elif ut == t_store:
                    qt = sq_times[cluster]
                    q_slot = sq_count[cluster] % sq_size
                    sq_count[cluster] += 1
                    gate = qt[q_slot]
                    if gate > dispatch:
                        dispatch = gate

                # ---- Ready: dataflow with inter-cluster bypass. ----
                ready = dispatch + 1.0
                bypass_gate = dispatch - 8.0
                s = c_src1[k]
                if s >= 0:
                    avail = complete[s]
                    if cluster_of[s] != cluster:
                        xc_transfers += 1
                        if avail > bypass_gate:
                            avail += xc_latency
                    if avail > ready:
                        ready = avail
                s = c_src2[k]
                if s >= 0:
                    avail = complete[s]
                    if cluster_of[s] != cluster:
                        xc_transfers += 1
                        if avail > bypass_gate:
                            avail += xc_latency
                    if avail > ready:
                        ready = avail

                # ---- Issue and execute. ----
                pool = pools[cluster][ut]
                best = pool[0]
                issue_at = ready if ready > best else best
                heapreplace(pool, issue_at + 1.0)
                lat = c_lat[k]
                if c_mshr[k]:
                    mt = mshr_times[cluster]
                    m_slot = mshr_count[cluster] % mshr_size
                    mshr_count[cluster] += 1
                    gate = mt[m_slot]
                    if gate > issue_at:
                        issue_at = gate
                    mt[m_slot] = issue_at + lat
                done = issue_at + lat
                complete[i] = done
                if done > max_done:
                    max_done = done
                st[sched_slot] = issue_at + 1.0

                # ---- Branch resolution. ----
                if c_redirect[k]:
                    redirect = done + penalty
                    if redirect > redirect_until:
                        redirect_until = redirect
                        fe_cycle = redirect + refill
                        fe_in_cycle = 0

                # ---- Retire in order at retire width. ----
                at = done if done > retire_gate else retire_gate
                if at == retire_gate:
                    retire_in_cycle += 1
                    if retire_in_cycle >= retire_width:
                        retire_gate += 1.0
                        retire_in_cycle = 0
                else:
                    retire_gate = at
                    retire_in_cycle = 1
                rob_times[rob_slot] = at
                if ut == t_load:
                    qt[q_slot] = at
                elif ut == t_store:
                    drain_at = at + 2.0
                    floor = last_drain[cluster] + drain_interval
                    if floor > drain_at:
                        drain_at = floor
                    last_drain[cluster] = drain_at
                    qt[q_slot] = drain_at

        total_cycles = max(retire_gate, max_done) + 1.0
        return CycleSimResult(
            mode=self.mode,
            n_uops=n,
            cycles=total_cycles,
            branch_mispredicts=branch_misses,
            loads=loads,
            stores=stores,
            l2_accesses=l2,
            l3_accesses=l3,
            dram_accesses=dram,
            intercluster_transfers=xc_transfers,
        )


def simulate_phase_cycle_level(phase: PhaseInstance, n_uops: int,
                               mode: Mode, seed: int,
                               machine: MachineConfig | None = None,
                               ) -> CycleSimResult:
    """Synthesize a uop stream for a phase and run the cycle model."""
    with tracer.span("cycle.simulate_phase", phase=phase.name,
                     mode=mode.value, uops=n_uops,
                     kernel=cycle_kernel()):
        stream = synthesize_uops(phase, n_uops,
                                 rng_mod.derive_seed(seed, "cyclesim",
                                                     phase.name,
                                                     mode.value))
        return ClusteredCoreModel(machine, mode).execute(stream)
