"""Two-tier clustered-core simulator.

The paper's data comes from an in-house cycle-accurate simulator of a
scaled Skylake with two out-of-order clusters (Figure 2). We provide
two coupled tiers:

* :mod:`repro.uarch.core_model` — a cycle-level, trace-driven dataflow
  simulator of the two-cluster machine: per-cluster schedulers, ROB,
  load/store queues, MSHRs, branch redirect, inter-cluster bypass, and
  the cluster-gating microcode flow.
* :mod:`repro.uarch.interval_model` — a fast, vectorised analytical
  model in the interval-analysis tradition that maps phase physics to
  per-interval IPC and telemetry base signals; used for dataset-scale
  experiments. Tests and a validation bench check the tiers agree.

Shared pieces: :mod:`repro.uarch.modes` (operating modes),
:mod:`repro.uarch.signals` (the base microarchitectural event signals
that the telemetry catalog derives its 936 counters from),
:mod:`repro.uarch.power` (the event-based power model standing in for
Haj-Yihia et al.), plus cache/branch/ISA components for the cycle tier.
"""

from repro.uarch.interval_model import IntervalModel, IntervalResult
from repro.uarch.modes import Mode
from repro.uarch.power import PowerModel, PowerBreakdown
from repro.uarch.signals import BASE_SIGNALS, signal_index

__all__ = [
    "IntervalModel",
    "IntervalResult",
    "Mode",
    "PowerModel",
    "PowerBreakdown",
    "BASE_SIGNALS",
    "signal_index",
]
