"""Set-associative caches and TLBs.

Structural memory-hierarchy components of the cycle tier: an LRU
set-associative cache with dirty-bit writebacks (the source of the "L2
silent evictions" counter — clean evictions are silent) and a small
fully-associative TLB. A three-level :class:`CacheHierarchy` composes
them. The trace-driven core consumes annotated outcomes; these
structures are exercised directly by structural tests and examples.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass
class CacheStats:
    """Access accounting for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    silent_evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """Set-associative LRU cache with write-back, write-allocate."""

    def __init__(self, size_kib: int, ways: int, line_bytes: int = 64,
                 name: str = "cache") -> None:
        size = size_kib * 1024
        n_lines = size // line_bytes
        if n_lines % ways != 0:
            raise ConfigurationError(
                f"{name}: {n_lines} lines not divisible by {ways} ways"
            )
        self.name = name
        self.ways = ways
        self.line_bytes = line_bytes
        self.n_sets = n_lines // ways
        # Per set: list of (tag, dirty), most recently used last.
        self._sets: list[list[tuple[int, bool]]] = [
            [] for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, address: int, write: bool = False) -> bool:
        """Access one address; returns True on hit.

        On a miss the line is allocated, evicting LRU if needed; clean
        evictions are counted as silent, dirty ones as writebacks.
        """
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        for i, (t, dirty) in enumerate(ways):
            if t == tag:
                ways.pop(i)
                ways.append((tag, dirty or write))
                self.stats.accesses += 1
                self.stats.hits += 1
                return True
        self.stats.accesses += 1
        self.stats.misses += 1
        if len(ways) >= self.ways:
            _evicted_tag, evicted_dirty = ways.pop(0)
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.writebacks += 1
            else:
                self.stats.silent_evictions += 1
        ways.append((tag, write))
        return False

    def reset_stats(self) -> None:
        """Zero the counters without flushing contents."""
        self.stats = CacheStats()


class TLB:
    """Small fully-associative LRU TLB."""

    def __init__(self, entries: int = 64, page_bytes: int = 4096) -> None:
        if entries < 1:
            raise ConfigurationError(f"entries must be >= 1: {entries}")
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: list[int] = []
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Translate one address; returns True on TLB hit."""
        page = address // self.page_bytes
        self.stats.accesses += 1
        if page in self._pages:
            self._pages.remove(page)
            self._pages.append(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.pop(0)
            self.stats.evictions += 1
        self._pages.append(page)
        return False


@dataclasses.dataclass(frozen=True)
class MemoryAccessResult:
    """Outcome of one hierarchy access."""

    level: int  # 0 = L1 hit ... 3 = DRAM
    latency: int
    tlb_miss: bool


class CacheHierarchy:
    """L1D + L2 + L3 + DTLB with additive latencies."""

    def __init__(self, l1_kib: int = 32, l2_kib: int = 1024,
                 l3_kib: int = 8192, line_bytes: int = 64,
                 l1_latency: int = 4, l2_latency: int = 12,
                 l3_latency: int = 40, memory_latency: int = 200,
                 tlb_entries: int = 64, tlb_penalty: int = 30) -> None:
        self.l1 = Cache(l1_kib, 8, line_bytes, "l1d")
        self.l2 = Cache(l2_kib, 16, line_bytes, "l2")
        self.l3 = Cache(l3_kib, 16, line_bytes, "l3")
        self.dtlb = TLB(tlb_entries)
        self.latencies = (l1_latency, l2_latency, l3_latency,
                          memory_latency)
        self.tlb_penalty = tlb_penalty

    def access(self, address: int, write: bool = False,
               ) -> MemoryAccessResult:
        """Access the full hierarchy; returns outcome level and latency."""
        tlb_miss = not self.dtlb.access(address)
        latency = self.tlb_penalty if tlb_miss else 0
        if self.l1.access(address, write):
            return MemoryAccessResult(0, latency + self.latencies[0],
                                      tlb_miss)
        if self.l2.access(address, write):
            return MemoryAccessResult(1, latency + self.latencies[1],
                                      tlb_miss)
        if self.l3.access(address, write):
            return MemoryAccessResult(2, latency + self.latencies[2],
                                      tlb_miss)
        return MemoryAccessResult(3, latency + self.latencies[3], tlb_miss)
