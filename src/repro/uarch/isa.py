"""Micro-op ISA and synthetic micro-op streams.

The cycle-level tier is trace-driven: it consumes arrays of micro-ops
annotated with dependency distances, memory-hierarchy outcomes and
branch outcomes. :func:`synthesize_uops` generates such streams from a
:class:`~repro.workloads.phases.PhaseInstance`, so the cycle model and
the fast interval model can be driven by the same phase physics and
validated against each other.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.workloads.phases import PhaseInstance


class UopType(enum.IntEnum):
    """Micro-op classes with distinct execution resources."""

    ALU = 0
    MUL = 1
    FP = 2
    LOAD = 3
    STORE = 4
    BRANCH = 5


#: Execution latency per uop type (cycles), before memory effects.
BASE_LATENCY = {
    UopType.ALU: 1,
    UopType.MUL: 3,
    UopType.FP: 4,
    UopType.LOAD: 4,  # L1 hit
    UopType.STORE: 1,
    UopType.BRANCH: 1,
}

#: Memory-hierarchy outcome levels for loads.
MEM_L1 = 0
MEM_L2 = 1
MEM_L3 = 2
MEM_DRAM = 3


@dataclasses.dataclass(frozen=True)
class UopStream:
    """A batch of micro-ops in program order (structure-of-arrays)."""

    types: np.ndarray  # (N,) UopType values
    src1: np.ndarray  # (N,) producer index or -1
    src2: np.ndarray  # (N,) producer index or -1
    mem_level: np.ndarray  # (N,) MEM_* for loads, -1 otherwise
    mispredicted: np.ndarray  # (N,) bool, branches only

    def __post_init__(self) -> None:
        n = self.types.shape[0]
        for name in ("src1", "src2", "mem_level", "mispredicted"):
            if getattr(self, name).shape[0] != n:
                raise ConfigurationError(f"{name} misaligned with types")

    @property
    def n_uops(self) -> int:
        return int(self.types.shape[0])

    def type_counts(self) -> dict[UopType, int]:
        """Histogram of uop types."""
        return {t: int((self.types == t).sum()) for t in UopType}


def synthesize_uops(phase: PhaseInstance, n_uops: int,
                    seed: int) -> UopStream:
    """Generate a synthetic micro-op stream with the phase's physics.

    * Types follow the phase's instruction mix.
    * Dependency distances are geometric with mean equal to the
      phase's ILP, which makes the dataflow-limited parallelism of the
      stream approximate ``ilp``.
    * Load outcomes sample the phase's hierarchical miss rates.
    * Branch mispredictions sample ``branch_mpki``.
    * Store bursts: with probability ``sq_pressure`` a store is part of
      a burst, emitted in runs that fill the store queue.
    """
    if n_uops <= 0:
        raise ConfigurationError(f"n_uops must be positive, got {n_uops}")
    rng = rng_mod.stream(seed, "uops", phase.name)

    probs = np.array([
        max(phase.frac_int - 0.05, 0.0),  # plain ALU
        0.05,  # MUL share of int
        phase.frac_fp,
        phase.frac_load,
        phase.frac_store,
        phase.frac_branch,
    ])
    probs = probs / probs.sum()
    types = rng.choice(len(UopType), size=n_uops, p=probs).astype(np.int8)

    # Store bursts: rewrite store positions into contiguous runs.
    if phase.sq_pressure > 0.3:
        burst_len = int(8 + phase.sq_pressure * 40)
        n_bursts = max(1, int(n_uops * phase.frac_store / burst_len))
        for start in rng.integers(0, max(1, n_uops - burst_len),
                                  size=n_bursts):
            span = slice(int(start), int(start) + burst_len)
            mask = rng.random(burst_len) < 0.7
            segment = types[span]
            segment[mask[:segment.shape[0]]] = int(UopType.STORE)

    # Dependencies: geometric distances calibrated so the stream's
    # *measured* dataflow parallelism (critical-path ratio, in uops per
    # cycle) matches the phase's ILP. Two corrections, both fit
    # empirically: a quadratic term because two-source uops deepen the
    # critical path, and the mean node latency, because loads and FP
    # ops are multi-cycle even when they hit the L1.
    mean_node_latency = (1.0
                         + 3.0 * phase.frac_load
                         + 3.0 * phase.frac_fp
                         + 0.1)
    mean_distance = phase.ilp * (0.9 + 0.12 * phase.ilp)
    mean_distance = min(mean_distance * mean_node_latency, 60.0)
    p = min(1.0, 1.0 / max(mean_distance, 1.0))
    dist1 = rng.geometric(p, size=n_uops)
    dist2 = rng.geometric(p, size=n_uops)
    idx = np.arange(n_uops)
    src1 = idx - dist1
    src2 = np.where(rng.random(n_uops) < 0.35, idx - dist2, -1)
    src1[src1 < 0] = -1
    src2[src2 < 0] = -1

    # Load outcomes from hierarchical miss rates (per-load rates).
    mem_level = np.full(n_uops, -1, dtype=np.int8)
    loads = np.flatnonzero(types == int(UopType.LOAD))
    if loads.size:
        per_load = 1000.0 * max(phase.frac_load, 1e-6)
        p_l1_miss = min(phase.l1d_mpki / per_load, 1.0)
        p_l2_miss = min(phase.l2_mpki / max(phase.l1d_mpki, 1e-9), 1.0)
        p_l3_miss = min(phase.l3_mpki / max(phase.l2_mpki, 1e-9), 1.0)
        draw = rng.random((loads.size, 3))
        level = np.zeros(loads.size, dtype=np.int8)
        miss1 = draw[:, 0] < p_l1_miss
        level[miss1] = MEM_L2
        miss2 = miss1 & (draw[:, 1] < p_l2_miss)
        level[miss2] = MEM_L3
        miss3 = miss2 & (draw[:, 2] < p_l3_miss)
        level[miss3] = MEM_DRAM
        mem_level[loads] = level

    mispredicted = np.zeros(n_uops, dtype=bool)
    branches = np.flatnonzero(types == int(UopType.BRANCH))
    if branches.size:
        per_branch = 1000.0 * max(phase.frac_branch, 1e-6)
        p_miss = min(phase.branch_mpki / per_branch, 1.0)
        mispredicted[branches] = rng.random(branches.size) < p_miss

    return UopStream(
        types=types,
        src1=src1.astype(np.int64),
        src2=src2.astype(np.int64),
        mem_level=mem_level,
        mispredicted=mispredicted,
    )
