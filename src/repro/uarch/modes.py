"""Operating modes of the clustered CPU (Section 3).

The core either steers instructions to both clusters (high-performance
mode, 8-wide) or runs on cluster 1 alone with cluster 2 clock-gated
(low-power mode, 4-wide, ~35% less power).
"""

from __future__ import annotations

import enum


class Mode(enum.Enum):
    """Cluster configuration of the CPU."""

    HIGH_PERF = "high_perf"
    LOW_POWER = "low_power"

    @property
    def gated(self) -> bool:
        """True when cluster 2 is clock-gated."""
        return self is Mode.LOW_POWER

    @property
    def active_clusters(self) -> int:
        """Number of enabled execution clusters."""
        return 1 if self is Mode.LOW_POWER else 2

    @classmethod
    def from_label(cls, label: int) -> "Mode":
        """Map a gating label (1 = gate / low power) to a mode."""
        return cls.LOW_POWER if label else cls.HIGH_PERF

    def to_label(self) -> int:
        """Map a mode to a gating label (1 = low power)."""
        return 1 if self is Mode.LOW_POWER else 0


#: Both modes, in a stable order (high-performance first).
ALL_MODES = (Mode.HIGH_PERF, Mode.LOW_POWER)
