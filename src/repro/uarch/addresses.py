"""Synthetic memory-address and branch-stream generators.

The structural simulation tier drives the real cache hierarchy and
branch predictors instead of replaying annotated outcomes. These
generators translate phase physics into concrete streams:

* :class:`AddressModel` emits load/store addresses from nested working
  sets sized to the machine's cache levels. The probability of
  touching each working-set tier is derived from the phase's
  hierarchical miss rates, so steady-state miss rates of a real LRU
  hierarchy approximate the phase targets. Bandwidth-style phases add
  a sequential streaming component.
* :class:`BranchStream` emits (pc, taken) pairs from a pool of static
  branches, mixing strongly biased branches (learnable by any
  predictor) with coin-flip branches; the unpredictable fraction is
  set so a trained predictor's steady-state mispredict rate lands near
  the phase's ``branch_mpki``.
"""

from __future__ import annotations

import numpy as np

from repro import rng as rng_mod
from repro.config import MachineConfig
from repro.errors import ConfigurationError
from repro.workloads.phases import PhaseInstance

#: Fraction of each cache level's capacity a "resident" working set
#: uses; below 1.0 so LRU keeps it resident under light interference.
RESIDENCY_FRACTION = 0.5


class AddressModel:
    """Per-phase address generator over nested working sets."""

    def __init__(self, phase: PhaseInstance, seed: int,
                 machine: MachineConfig | None = None) -> None:
        machine = machine or MachineConfig()
        self.phase = phase
        self._rng = rng_mod.stream(seed, "addr", phase.name)
        line = machine.line_bytes

        # Working-set sizes in lines, nested within the hierarchy.
        self._ws_lines = [
            max(int(machine.l1d_kib * 1024 / line * RESIDENCY_FRACTION),
                16),
            max(int(machine.l2_kib * 1024 / line * RESIDENCY_FRACTION),
                64),
            max(int(machine.l3_kib * 1024 / line * RESIDENCY_FRACTION),
                256),
        ]
        # Disjoint base offsets per tier (in lines).
        self._ws_base = [0, 1 << 22, 1 << 24]
        self._line = line

        # Tier probabilities from hierarchical per-access miss rates.
        accesses_per_kinst = 1000.0 * max(
            phase.frac_load + phase.frac_store, 1e-6)
        p_l1_miss = min(phase.l1d_mpki / accesses_per_kinst, 1.0)
        p_l2_miss = min(phase.l2_mpki / max(phase.l1d_mpki, 1e-9), 1.0)
        p_l3_miss = min(phase.l3_mpki / max(phase.l2_mpki, 1e-9), 1.0)
        p_tier2 = p_l1_miss * (1.0 - p_l2_miss)  # L2-resident set
        p_tier3 = p_l1_miss * p_l2_miss * (1.0 - p_l3_miss)
        p_stream = p_l1_miss * p_l2_miss * p_l3_miss  # DRAM-bound
        p_tier1 = max(1.0 - p_tier2 - p_tier3 - p_stream, 0.0)
        self._tier_probs = np.array([p_tier1, p_tier2, p_tier3,
                                     p_stream])
        self._tier_probs /= self._tier_probs.sum()
        self._stream_cursor = 1 << 26  # streaming region (lines)

    def generate(self, n: int) -> np.ndarray:
        """``n`` byte addresses following the phase's locality."""
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        tiers = self._rng.choice(4, size=n, p=self._tier_probs)
        lines = np.empty(n, dtype=np.int64)
        for tier in range(3):
            mask = tiers == tier
            count = int(mask.sum())
            if count:
                lines[mask] = (self._ws_base[tier]
                               + self._rng.integers(
                                   0, self._ws_lines[tier], count))
        stream_mask = tiers == 3
        count = int(stream_mask.sum())
        if count:
            # Sequential streaming through never-reused lines.
            lines[stream_mask] = (self._stream_cursor
                                  + np.arange(count))
            self._stream_cursor += count
        return lines * self._line


class BranchStream:
    """Per-phase (pc, taken) stream with tunable predictability."""

    #: Mispredict rate of a 2-bit predictor on a coin-flip branch.
    _RANDOM_MISS_RATE = 0.5
    #: Residual mispredict rate on a strongly biased branch.
    _BIASED_MISS_RATE = 0.04

    def __init__(self, phase: PhaseInstance, seed: int,
                 n_static_branches: int = 64) -> None:
        self.phase = phase
        self._rng = rng_mod.stream(seed, "branch", phase.name)
        per_branch = 1000.0 * max(phase.frac_branch, 1e-6)
        target = min(phase.branch_mpki / per_branch, 0.5)
        # Mix fraction of coin-flip branches to hit the target rate.
        hard_fraction = max(0.0, min(
            (target - self._BIASED_MISS_RATE)
            / (self._RANDOM_MISS_RATE - self._BIASED_MISS_RATE), 1.0))
        n_hard = int(round(n_static_branches * hard_fraction))
        self._pcs = 0x40_0000 + 4 * np.arange(n_static_branches)
        self._is_hard = np.zeros(n_static_branches, dtype=bool)
        self._is_hard[:n_hard] = True
        self._bias = self._rng.uniform(0.9, 0.99, n_static_branches)
        self.target_rate = target

    def generate(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """``n`` (pc, taken) pairs."""
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        which = self._rng.integers(0, self._pcs.shape[0], n)
        draws = self._rng.random(n)
        hard = self._is_hard[which]
        taken = np.where(hard, draws < 0.5, draws < self._bias[which])
        return self._pcs[which], taken
