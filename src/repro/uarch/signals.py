"""Base microarchitectural event signals.

The paper's telemetry subsystem exposes 936 event counters. Physically,
most hardware counters observe a much smaller set of underlying events
through different windows (different thresholds, edges, unit masks,
duplicated per slice, ...). We model that: the simulator tiers emit the
~56 *base signals* defined here, and :mod:`repro.telemetry.counters`
derives the full 936-counter catalog from them (aliases, noisy copies,
combinations, low-activity and dead counters).

Each base signal is a per-interval count (occupancy signals are summed
occupancy, i.e. entries x cycles, as real occupancy counters count).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class SignalDef:
    """One base signal: stable name, human description, unit class."""

    name: str
    description: str
    unit: str  # "count", "cycles", "occupancy", "bytes"


BASE_SIGNALS: tuple[SignalDef, ...] = (
    SignalDef("cycles", "Core clock cycles", "cycles"),
    SignalDef("instructions", "Instructions retired", "count"),
    SignalDef("uops_issued", "Micro-ops issued to schedulers", "count"),
    SignalDef("uops_retired", "Micro-ops retired", "count"),
    SignalDef("loads_retired", "Load instructions retired", "count"),
    SignalDef("stores_retired", "Store instructions retired", "count"),
    SignalDef("branches_retired", "Branch instructions retired", "count"),
    SignalDef("fp_ops_retired", "Floating-point ops retired", "count"),
    SignalDef("int_ops_retired", "Integer ALU ops retired", "count"),
    SignalDef("l1d_reads", "L1 data cache read accesses", "count"),
    SignalDef("l1d_writes", "L1 data cache write accesses", "count"),
    SignalDef("l1d_hits", "L1 data cache hits", "count"),
    SignalDef("l1d_misses", "L1 data cache misses", "count"),
    SignalDef("l2_accesses", "L2 cache accesses", "count"),
    SignalDef("l2_hits", "L2 cache hits", "count"),
    SignalDef("l2_misses", "L2 cache misses", "count"),
    SignalDef("l3_accesses", "L3 cache accesses", "count"),
    SignalDef("l3_hits", "L3 cache hits", "count"),
    SignalDef("l3_misses", "L3 cache misses", "count"),
    SignalDef("memory_reads", "DRAM read transactions", "count"),
    SignalDef("l2_evictions", "L2 cache evictions", "count"),
    SignalDef("l2_silent_evictions", "L2 clean (silent) evictions", "count"),
    SignalDef("l2_dirty_evictions", "L2 dirty evictions (writebacks)", "count"),
    SignalDef("branch_mispredicts", "Branch mispredictions", "count"),
    SignalDef("wrong_path_uops", "Wrong-path micro-ops flushed", "count"),
    SignalDef("pipeline_flushes", "Pipeline flush events", "count"),
    SignalDef("icache_misses", "Instruction cache misses", "count"),
    SignalDef("icache_hits", "Instruction cache hits", "count"),
    SignalDef("uopcache_hits", "Micro-op cache hits", "count"),
    SignalDef("uopcache_misses", "Micro-op cache misses", "count"),
    SignalDef("itlb_misses", "Instruction TLB misses", "count"),
    SignalDef("dtlb_misses", "Data TLB misses", "count"),
    SignalDef("stall_cycles", "Cycles with no issue (any reason)", "cycles"),
    SignalDef("frontend_stall_cycles", "Front-end bound stall cycles", "cycles"),
    SignalDef("backend_stall_cycles", "Back-end bound stall cycles", "cycles"),
    SignalDef("memory_stall_cycles", "Memory-bound stall cycles", "cycles"),
    SignalDef("dep_stall_cycles", "Dependency-bound stall cycles", "cycles"),
    SignalDef("sq_full_stall_cycles", "Store-queue-full stall cycles", "cycles"),
    SignalDef("uops_ready", "Micro-ops ready to issue (summed)", "occupancy"),
    SignalDef("uops_stalled_dep", "Micro-ops stalled on dependences (summed)",
              "occupancy"),
    SignalDef("preg_refs", "Physical register file references", "count"),
    SignalDef("preg_allocs", "Physical register allocations", "count"),
    SignalDef("rob_occupancy", "ROB occupancy (entries x cycles)", "occupancy"),
    SignalDef("sq_occupancy", "Store queue occupancy (entries x cycles)",
              "occupancy"),
    SignalDef("lq_occupancy", "Load queue occupancy (entries x cycles)",
              "occupancy"),
    SignalDef("scheduler_occupancy", "Scheduler occupancy (entries x cycles)",
              "occupancy"),
    SignalDef("mshr_occupancy", "MSHR occupancy (entries x cycles)",
              "occupancy"),
    SignalDef("intercluster_transfers", "Inter-cluster operand transfers",
              "count"),
    SignalDef("mode_switches", "Cluster mode switches", "count"),
    SignalDef("prefetches_issued", "Hardware prefetches issued", "count"),
    SignalDef("prefetch_hits", "Prefetch-covered demand accesses", "count"),
    SignalDef("fp_divides", "FP divide/sqrt ops", "count"),
    SignalDef("int_muls", "Integer multiply ops", "count"),
    SignalDef("mem_bandwidth_bytes", "DRAM traffic in bytes", "bytes"),
    SignalDef("store_buffer_drains", "Store buffer drain events", "count"),
    SignalDef("machine_clears", "Machine clear events", "count"),
)

#: Number of base signals.
N_SIGNALS = len(BASE_SIGNALS)

_INDEX = {sig.name: i for i, sig in enumerate(BASE_SIGNALS)}


def signal_index(name: str) -> int:
    """Index of a base signal by name.

    Raises
    ------
    KeyError
        If the signal does not exist.
    """
    return _INDEX[name]


def signal_names() -> list[str]:
    """All base signal names in order."""
    return [sig.name for sig in BASE_SIGNALS]
