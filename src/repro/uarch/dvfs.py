"""Dynamic voltage and frequency scaling (DVFS) interplay.

Section 2.1 positions cluster gating against DVFS: "cluster gating is
a complementary technique that can further reduce power at V_min".
This module provides a first-order DVFS model so that claim can be
measured:

* voltage tracks frequency linearly above ``f_min``; below ``f_min``
  the rail is pinned at ``v_min`` (scaling frequency further saves
  little energy because voltage cannot follow);
* dynamic energy per event scales with V^2;
* static power scales with V^2 (supply times leakage current, which
  itself rises roughly linearly in V through DIBL at fixed
  temperature);
* memory latency is constant in *time*, so its cycle count scales with
  frequency — running slower converts memory-bound stalls into useful
  overlap, which the scaled :class:`~repro.config.MachineConfig`
  captures.
"""

from __future__ import annotations

import dataclasses

from repro.config import MachineConfig
from repro.errors import ConfigurationError
from repro.uarch.power import PowerModel


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """One DVFS operating point."""

    frequency_ghz: float
    voltage: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.voltage <= 0:
            raise ConfigurationError(
                f"invalid operating point {self.frequency_ghz} GHz "
                f"@ {self.voltage} V"
            )


class DVFSModel:
    """Linear V-f curve with a minimum-voltage floor."""

    def __init__(self, nominal_frequency_ghz: float = 2.0,
                 nominal_voltage: float = 1.0,
                 f_min_ghz: float = 1.0, v_min: float = 0.72) -> None:
        if not 0.0 < f_min_ghz <= nominal_frequency_ghz:
            raise ConfigurationError(
                f"f_min {f_min_ghz} outside (0, {nominal_frequency_ghz}]"
            )
        if not 0.0 < v_min <= nominal_voltage:
            raise ConfigurationError(
                f"v_min {v_min} outside (0, {nominal_voltage}]"
            )
        self.nominal = OperatingPoint(nominal_frequency_ghz,
                                      nominal_voltage)
        self.f_min_ghz = f_min_ghz
        self.v_min = v_min

    def voltage_for(self, frequency_ghz: float) -> float:
        """Rail voltage required for a frequency (floored at v_min)."""
        if frequency_ghz > self.nominal.frequency_ghz:
            raise ConfigurationError(
                f"{frequency_ghz} GHz exceeds the nominal point"
            )
        if frequency_ghz <= self.f_min_ghz:
            return self.v_min
        span = self.nominal.frequency_ghz - self.f_min_ghz
        frac = (frequency_ghz - self.f_min_ghz) / span
        return self.v_min + frac * (self.nominal.voltage - self.v_min)

    def operating_point(self, frequency_ghz: float) -> OperatingPoint:
        """The operating point at a frequency."""
        return OperatingPoint(frequency_ghz,
                              self.voltage_for(frequency_ghz))

    # ------------------------------------------------------------------
    def machine_at(self, frequency_ghz: float,
                   base: MachineConfig | None = None) -> MachineConfig:
        """A machine config rescaled to a frequency.

        DRAM latency is constant in nanoseconds, so its cycle count
        scales with frequency; on-chip latencies scale with the clock
        and stay constant in cycles.
        """
        base = base or MachineConfig()
        scale = frequency_ghz / base.frequency_ghz
        return dataclasses.replace(
            base,
            frequency_ghz=frequency_ghz,
            memory_latency=max(int(round(base.memory_latency * scale)),
                               base.l3_latency + 1),
        )

    def power_model_at(self, frequency_ghz: float,
                       machine: MachineConfig | None = None,
                       base: PowerModel | None = None) -> PowerModel:
        """A power model rescaled to an operating point.

        Dynamic event energies and static power both scale with V^2.
        """
        base = base or PowerModel(machine)
        point = self.operating_point(frequency_ghz)
        v_ratio = point.voltage / self.nominal.voltage
        energies = {name: value * v_ratio ** 2
                    for name, value in base.event_energy_nj.items()}
        return PowerModel(
            machine=machine or base.machine,
            event_energy_nj=energies,
            cluster_static_w=base.cluster_static_w * v_ratio ** 2,
            uncore_static_w=base.uncore_static_w * v_ratio ** 2,
            gating_savings=base.gating_savings,
        )
