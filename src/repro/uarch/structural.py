"""Structural simulation tier: real caches and branch predictors.

The default (annotated) cycle tier replays per-uop outcomes sampled
from phase physics — fast and exactly aligned with the interval model.
This tier instead *derives* outcomes structurally: loads and stores
walk the LRU cache hierarchy (:mod:`repro.uarch.caches`) over
synthetic address streams (:mod:`repro.uarch.addresses`); branches run
through a trained gshare predictor over synthetic (pc, taken) streams.

It exists to validate the substitution chain end to end: phase physics
-> synthetic streams -> real structures should reproduce the miss and
mispredict rates the annotations assume. Tests assert that closure.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import rng as rng_mod
from repro.config import MachineConfig
from repro.uarch.addresses import AddressModel, BranchStream
from repro.uarch.branch import GsharePredictor
from repro.uarch.caches import CacheHierarchy
from repro.uarch.core_model import ClusteredCoreModel, CycleSimResult
from repro.uarch.isa import UopStream, UopType, synthesize_uops
from repro.uarch.modes import Mode
from repro.workloads.phases import PhaseInstance


@dataclasses.dataclass(frozen=True)
class StructuralStream:
    """A uop stream plus concrete addresses and branch outcomes."""

    uops: UopStream
    addresses: np.ndarray  # (N,) byte address per uop (0 for non-mem)
    branch_pcs: np.ndarray  # (N,) pc per uop (0 for non-branches)
    branch_taken: np.ndarray  # (N,) bool


def synthesize_structural_stream(phase: PhaseInstance, n_uops: int,
                                 seed: int,
                                 machine: MachineConfig | None = None,
                                 ) -> StructuralStream:
    """Build a structural stream with the phase's physics."""
    uops = synthesize_uops(phase, n_uops, seed)
    addresses = np.zeros(n_uops, dtype=np.int64)
    mem_mask = ((uops.types == int(UopType.LOAD))
                | (uops.types == int(UopType.STORE)))
    n_mem = int(mem_mask.sum())
    if n_mem:
        model = AddressModel(phase, rng_mod.derive_seed(seed, "amodel"),
                             machine)
        addresses[mem_mask] = model.generate(n_mem)
    branch_pcs = np.zeros(n_uops, dtype=np.int64)
    branch_taken = np.zeros(n_uops, dtype=bool)
    br_mask = uops.types == int(UopType.BRANCH)
    n_br = int(br_mask.sum())
    if n_br:
        stream = BranchStream(phase, rng_mod.derive_seed(seed, "bmodel"))
        pcs, taken = stream.generate(n_br)
        branch_pcs[br_mask] = pcs
        branch_taken[br_mask] = taken
    return StructuralStream(uops=uops, addresses=addresses,
                            branch_pcs=branch_pcs,
                            branch_taken=branch_taken)


class StructuralCoreModel(ClusteredCoreModel):
    """Cycle model whose memory/branch outcomes come from structures."""

    def __init__(self, machine: MachineConfig | None = None,
                 mode: Mode = Mode.HIGH_PERF) -> None:
        super().__init__(machine, mode)
        machine = self.machine
        self.hierarchy = CacheHierarchy(
            l1_kib=machine.l1d_kib, l2_kib=machine.l2_kib,
            l3_kib=machine.l3_kib, line_bytes=machine.line_bytes,
            l1_latency=machine.l1_latency, l2_latency=machine.l2_latency,
            l3_latency=machine.l3_latency,
            memory_latency=machine.memory_latency,
            tlb_penalty=machine.tlb_miss_penalty)
        self.predictor = GsharePredictor()
        self._structural: StructuralStream | None = None
        self.branch_mispredict_count = 0

    # ------------------------------------------------------------------
    def load_outcome(self, stream: UopStream, i: int) -> int:
        assert self._structural is not None
        address = int(self._structural.addresses[i])
        return self.hierarchy.access(address, write=False).level

    def store_outcome(self, stream: UopStream, i: int) -> None:
        assert self._structural is not None
        address = int(self._structural.addresses[i])
        self.hierarchy.access(address, write=True)

    def branch_outcome(self, stream: UopStream, i: int) -> bool:
        assert self._structural is not None
        pc = int(self._structural.branch_pcs[i])
        taken = bool(self._structural.branch_taken[i])
        predicted = self.predictor.predict(pc)
        self.predictor.update(pc, taken)
        missed = predicted != taken
        self.branch_mispredict_count += missed
        return missed

    # ------------------------------------------------------------------
    def execute_structural(self, stream: StructuralStream,
                           ) -> CycleSimResult:
        """Run a structural stream through the cycle model."""
        self._structural = stream
        try:
            return self.execute(stream.uops)
        finally:
            self._structural = None

    def measured_l1_miss_rate(self) -> float:
        """Demand L1D miss rate observed so far."""
        return self.hierarchy.l1.stats.miss_rate


def simulate_phase_structural(phase: PhaseInstance, n_uops: int,
                              mode: Mode, seed: int,
                              machine: MachineConfig | None = None,
                              warmup_uops: int = 4000,
                              ) -> tuple[CycleSimResult,
                                         StructuralCoreModel]:
    """Warm the structures, then measure one phase structurally.

    Returns the post-warmup result and the model (whose cache/branch
    statistics cover only the measured region).
    """
    model = StructuralCoreModel(machine, mode)
    warm = synthesize_structural_stream(
        phase, warmup_uops, rng_mod.derive_seed(seed, "warm"), machine)
    model.execute_structural(warm)
    # Reset statistics but keep structure contents (warm caches).
    model.hierarchy.l1.reset_stats()
    model.hierarchy.l2.reset_stats()
    model.hierarchy.l3.reset_stats()
    model.branch_mispredict_count = 0
    stream = synthesize_structural_stream(
        phase, n_uops, rng_mod.derive_seed(seed, "measure"), machine)
    result = model.execute_structural(stream)
    return result, model
