"""The surrogate tier: training, the agreement gate, and scoring.

Lifecycle (all deterministic, so every worker process independently
reaches the same tier state and the same per-pair decisions):

1. **Probe corpus** — a seeded, machine-independent set of traces
   drawn round-robin from the workload categories, so every phase
   family the generators produce is represented.
2. **Training** — the probes are simulated through the *interval tier*
   (its outputs are the ground truth being learned; warm `SimCache`
   entries make retraining cheap), and one
   :class:`~repro.surrogate.model.RidgeEnsemble` per mode is fitted on
   the earlier probes.
3. **Agreement gate** — on the held-out later probes, the surrogate
   must reach Spearman rank correlation >= :data:`MIN_SPEARMAN` and
   per-mode mean relative IPC error <= :data:`MAX_MRE` against the
   interval tier — the same rank-correlation discipline that validates
   the interval tier against the cycle model. Below threshold the tier
   *refuses to activate*: every pair falls back to interval simulation
   and ``surrogate.refused`` counts the refusal.
4. **Scoring** — each cache-missing (trace, mode) pair is accepted only
   if every feature lies within the training range (plus
   :data:`OOD_MARGIN` of slack) *and* the ensemble's relative CPI
   disagreement stays under the configured threshold at the 95th
   percentile. Accepted pairs become
   :class:`~repro.uarch.interval_model.IntervalResult` objects tagged
   ``tier="surrogate"``; everything else is simulated exactly as
   before, bit-identically.

The trained tier persists in the `SimCache` (content-addressed on the
machine config, the probe-corpus fingerprint, and the feature/model
versions), so warm runs skip probe simulation entirely.
"""

from __future__ import annotations

import time

import numpy as np

from repro import rng as rng_mod
from repro.eval.metrics import mean_relative_error, spearman
from repro.exec.stats import EXEC_STATS
from repro.obs import tracer
from repro.surrogate.features import FEATURE_VERSION, feature_matrix
from repro.surrogate.model import N_MEMBERS, RIDGE_LAMBDA, RidgeEnsemble
from repro.uarch.modes import Mode
from repro.uarch.signals import signal_index
from repro.workloads.categories import CATEGORIES
from repro.workloads.generator import TraceSpec, generate_application

#: Bump when the tier's training recipe or stored layout changes.
SURROGATE_VERSION = 1

#: Seed root of the probe corpus (machine-independent).
PROBE_SEED = 0x50BE

#: Intervals per probe trace.
PROBE_INTERVALS = 64

#: Fraction of probe traces held out for the agreement gate.
HOLDOUT_FRACTION = 0.25

#: Agreement gate: minimum Spearman rho of held-out per-interval IPC.
MIN_SPEARMAN = 0.95

#: Agreement gate: maximum per-mode mean relative IPC error.
MAX_MRE = 0.05

#: Out-of-distribution slack, as a fraction of each feature's training
#: span, added on both sides of the [min, max] range check.
OOD_MARGIN = 0.35


def probe_corpus(n_probes: int, intervals: int = PROBE_INTERVALS,
                 ) -> list[TraceSpec]:
    """Seeded probe traces covering every workload category.

    Machine-independent by construction: only :data:`PROBE_SEED`, the
    category definitions and ``n_probes`` shape the corpus, so one
    trained surrogate is addressable from every process simulating the
    same machine.
    """
    probes = []
    for i in range(n_probes):
        cat = CATEGORIES[i % len(CATEGORIES)]
        app = generate_application(
            name=f"surrogate_probe_{i:03d}",
            category=cat.name,
            families_weights=cat.family_weights,
            seed=rng_mod.derive_seed(PROBE_SEED, "surrogate-probe", i),
        )
        probes.append(app.workload(0).trace(intervals, 0))
    return probes


class SurrogateTier:
    """Confidence-gated learned fast path over one ``IntervalModel``."""

    def __init__(self, model, threshold: float, n_probes: int) -> None:
        self.model = model
        self.threshold = float(threshold)
        self.n_probes = int(n_probes)
        #: Whether the agreement gate passed; False serves 100% fallback.
        self.active = False
        #: Per-mode held-out agreement: {mode.value: {"rho", "mre"}}.
        self.agreement: dict[str, dict[str, float]] = {}
        self._ensembles: dict[Mode, RidgeEnsemble] = {}
        #: Per-mode (lo, hi, margin) feature-range arrays for OOD checks.
        self._ranges: dict[Mode, tuple[np.ndarray, np.ndarray,
                                       np.ndarray]] = {}
        self._exact_cols = (signal_index("cycles"),
                            signal_index("instructions"))

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------
    def train(self) -> None:
        """Fit (or load) the surrogate and run the agreement gate."""
        start = time.perf_counter()
        with tracer.span("surrogate.train", probes=self.n_probes):
            # The probe pass below runs through the interval tier; the
            # guard keeps it from consulting the surrogate recursively
            # or serving stale surrogate LRU entries as ground truth.
            self.model._training = True
            try:
                if not self._load():
                    self._fit()
                    self._store()
            finally:
                self.model._training = False
        EXEC_STATS.observe("surrogate.train_s",
                           time.perf_counter() - start)
        if not self.active:
            EXEC_STATS.incr("surrogate.refused")

    def _probe_rows(self, probes: list[TraceSpec],
                    ) -> dict[Mode, dict[str, np.ndarray]]:
        """Features and interval-tier targets for every probe pair."""
        results = self.model.simulate_batch(probes)
        per_mode: dict[Mode, dict[str, list]] = {
            mode: {"x": [], "cpi": [], "sig": [], "ipc": []}
            for mode in Mode
        }
        for trace in probes:
            jittered = self.model._jittered_physics(trace)
            inst = float(trace.interval_instructions)
            for mode in Mode:
                result = results[(trace.name, trace.seed,
                                  trace.n_intervals, mode)]
                physics = self.model.mode_adjusted_physics(jittered, mode)
                rows = per_mode[mode]
                rows["x"].append(feature_matrix(self.model, physics, mode))
                rows["cpi"].append(result.cycles / inst)
                rows["sig"].append(result.signals / inst)
                rows["ipc"].append(result.ipc)
        return {
            mode: {name: np.concatenate(chunks)
                   for name, chunks in rows.items()}
            for mode, rows in per_mode.items()
        }

    def _fit(self) -> None:
        probes = probe_corpus(self.n_probes)
        n_hold = max(2, int(round(self.n_probes * HOLDOUT_FRACTION)))
        train_rows = self._probe_rows(probes[:-n_hold])
        held_rows = self._probe_rows(probes[-n_hold:])
        self.agreement = {}
        passed = True
        for mode in Mode:
            rows = train_rows[mode]
            x = rows["x"]
            y = np.hstack([rows["cpi"][:, None], rows["sig"]])
            ens = RidgeEnsemble(seed=PROBE_SEED).fit(x, y)
            self._ensembles[mode] = ens
            lo = x.min(axis=0)
            hi = x.max(axis=0)
            self._ranges[mode] = (lo, hi, OOD_MARGIN * (hi - lo))
            # Agreement on held-out probes: predicted IPC (through the
            # same width clip the interval tier applies) vs the truth.
            held = held_rows[mode]
            cpi_pred = ens.member_cpi(ens.scale(held["x"])).mean(axis=-1)
            width = self.model.effective_width(mode)
            ipc_pred = np.minimum(1.0 / cpi_pred, width)
            rho = spearman(held["ipc"], ipc_pred)
            mre = mean_relative_error(held["ipc"], ipc_pred)
            self.agreement[mode.value] = {"rho": rho, "mre": mre}
            if rho < MIN_SPEARMAN or mre > MAX_MRE:
                passed = False
        self.active = passed

    # ------------------------------------------------------------------
    # SimCache persistence.
    # ------------------------------------------------------------------
    def _cache_key(self) -> str | None:
        simcache = self.model.simcache
        if simcache is None or not hasattr(simcache, "surrogate_key"):
            return None
        return simcache.surrogate_key(
            self.model.machine, probe_corpus(self.n_probes),
            f"v={SURROGATE_VERSION}/f={FEATURE_VERSION}"
            f"/k={N_MEMBERS}/lam={RIDGE_LAMBDA!r}",
        )

    def _store(self) -> None:
        key = self._cache_key()
        if key is None:
            return
        payload: dict[str, np.ndarray] = {}
        for mode in Mode:
            prefix = mode.value
            payload.update(self._ensembles[mode].to_payload(prefix))
            lo, hi, margin = self._ranges[mode]
            payload[f"{prefix}_range_lo"] = lo
            payload[f"{prefix}_range_hi"] = hi
            payload[f"{prefix}_range_margin"] = margin
        self.model.simcache.store_surrogate(key, payload, {
            "active": bool(self.active),
            "agreement": self.agreement,
            "n_probes": self.n_probes,
        })

    def _load(self) -> bool:
        key = self._cache_key()
        if key is None:
            return False
        entry = self.model.simcache.load_surrogate(key)
        if entry is None:
            return False
        payload, meta = entry
        try:
            for mode in Mode:
                prefix = mode.value
                self._ensembles[mode] = RidgeEnsemble.from_payload(
                    payload, prefix, seed=PROBE_SEED)
                self._ranges[mode] = (
                    np.asarray(payload[f"{prefix}_range_lo"],
                               dtype=np.float64),
                    np.asarray(payload[f"{prefix}_range_hi"],
                               dtype=np.float64),
                    np.asarray(payload[f"{prefix}_range_margin"],
                               dtype=np.float64),
                )
            self.active = bool(meta["active"])
            self.agreement = dict(meta["agreement"])
        except KeyError:
            # A structurally incomplete entry (digest-valid but from a
            # buggy writer): drop it and retrain.
            self.model.simcache.evict(key)
            self._ensembles.clear()
            self._ranges.clear()
            return False
        EXEC_STATS.incr("surrogate.cache_hit")
        return True

    # ------------------------------------------------------------------
    # Scoring.
    # ------------------------------------------------------------------
    def score(self, misses: list) -> tuple[dict, list]:
        """Partition cache misses into accepted results and fallbacks.

        ``misses`` holds ``(key, trace, mode, disk_key)`` items exactly
        as ``simulate_batch`` builds them. Returns ``(accepted,
        fallback)`` where ``accepted`` maps keys to surrogate-tagged
        :class:`~repro.uarch.interval_model.IntervalResult` objects and
        ``fallback`` keeps the untouched miss items for the interval
        pass.
        """
        if not self.active:
            EXEC_STATS.incr("surrogate.fallback", len(misses))
            return {}, list(misses)
        with tracer.span("surrogate.predict", pairs=len(misses)):
            accepted, fallback = self._score_items(misses)
        EXEC_STATS.incr("surrogate.accepted", len(accepted))
        EXEC_STATS.incr("surrogate.fallback", len(fallback))
        return accepted, fallback

    def score_one(self, trace: TraceSpec, mode: Mode):
        """Gate-and-predict a single pair (the scalar ``simulate`` path).

        Routes through the same :meth:`_score_group` math as the
        batched entry point, so both reach the same decision — and the
        same accepted bits — for every pair. Returns ``None`` on
        fallback.
        """
        if not self.active:
            EXEC_STATS.incr("surrogate.fallback")
            return None
        key = (trace.name, trace.seed, trace.n_intervals, mode)
        accepted, _ = self._score_items([(key, trace, mode, None)])
        result = accepted.get(key)
        EXEC_STATS.incr("surrogate.accepted" if result is not None
                        else "surrogate.fallback")
        return result

    def _score_items(self, items: list) -> tuple[dict, list]:
        """Gate every miss item, grouped ``(n_intervals, mode)``-wise."""
        accepted: dict = {}
        fallback: list = []
        jittered: dict[tuple, np.ndarray] = {}
        groups: dict[tuple, list] = {}
        for item in items:
            groups.setdefault((item[1].n_intervals, item[2]), []).append(item)
        for _, group in sorted(groups.items(),
                               key=lambda kv: (kv[0][0], kv[0][1].value)):
            self._score_group(group, accepted, fallback, jittered)
        return accepted, fallback

    def _score_group(self, group: list, accepted: dict, fallback: list,
                     jittered: dict) -> None:
        """Vectorised gate over same-length, same-mode pairs.

        Every gate quantity (features, OOD bounds, member CPI spread)
        is computed with elementwise fixed-order operations, and the
        per-pair signal products have shapes fixed by the trace alone —
        see :meth:`~repro.surrogate.model.RidgeEnsemble.member_cpi` —
        so each pair's decision and accepted bits are identical no
        matter how pairs were batched. Serial, threaded and process
        builds chunk differently but must agree bit-for-bit.
        """
        mode = group[0][2]
        rows = []
        for _, trace, _, _ in group:
            tkey = (trace.name, trace.seed, trace.n_intervals)
            physics = jittered.get(tkey)
            if physics is None:
                physics = self.model._jittered_physics(trace)
                jittered[tkey] = physics
            rows.append(physics)
        physics = self.model.mode_adjusted_physics(np.stack(rows), mode)
        x = feature_matrix(self.model, physics, mode)  # (P, T, D)
        lo, hi, margin = self._ranges[mode]
        ok = ~((x < lo - margin) | (x > hi + margin)).any(axis=(-2, -1))
        ens = self._ensembles[mode]
        z = ens.scale(x)
        cpi_members = ens.member_cpi(z)  # (P, T, K)
        cpi_mean = cpi_members.mean(axis=-1)
        ok &= (cpi_mean > 0.0).all(axis=-1)
        with np.errstate(divide="ignore", invalid="ignore"):
            disagreement = cpi_members.std(axis=-1) / cpi_mean
        # Nearest-rank 95th percentile via a single partition — cheaper
        # than an interpolating quantile and just as deterministic.
        t_count = disagreement.shape[-1]
        rank = min(t_count - 1, int(np.ceil(0.95 * t_count)) - 1)
        p95 = np.partition(disagreement, rank, axis=-1)[..., rank]
        width = self.model.effective_width(mode)
        # The IPC/cycles arithmetic is elementwise, so computing it for
        # the whole group at once gives each row the same bits as a
        # per-pair computation would.
        inst_col = np.array([[float(t.interval_instructions)]
                             for _, t, _, _ in group])
        ipc_all = np.minimum(1.0 / cpi_mean, width)
        cpi_all = 1.0 / ipc_all
        cycles_all = inst_col * cpi_all
        from repro.uarch.interval_model import IntervalResult
        for i, item in enumerate(group):
            if not (ok[i] and p95[i] <= self.threshold):
                fallback.append(item)
                continue
            key, trace = item[0], item[1]
            inst = inst_col[i, 0]
            cycles = cycles_all[i]
            signals = ens.signals_scaled(z[i]) * inst
            np.maximum(signals, 0.0, out=signals)
            # Cycles and instructions are counted exactly by the
            # hardware; keep them consistent with the predicted CPI.
            signals[:, self._exact_cols[0]] = cycles
            signals[:, self._exact_cols[1]] = inst
            accepted[key] = IntervalResult(
                trace_name=trace.name,
                mode=mode,
                ipc=ipc_all[i],
                cycles=cycles,
                signals=signals,
                interval_instructions=trace.interval_instructions,
                tier="surrogate",
            )
