"""Bootstrap ridge ensemble behind the surrogate tier.

A closed-form linear model is the right size for this problem: the
interval tier's CPI is additive in the engineered features of
:mod:`repro.surrogate.features`, so ridge regression recovers it
almost exactly in-distribution, trains in milliseconds (one
``(D+1, D+1)`` solve per ensemble member), and adds no dependencies.
The ensemble exists for the confidence gate: members are fitted on
bootstrap resamples of the training rows, and their spread on the CPI
head measures how far a query sits from the supported feature region.

Outputs are stacked as ``[cpi | signals / instructions]`` so one
design-matrix product yields everything an
:class:`~repro.uarch.interval_model.IntervalResult` needs.
"""

from __future__ import annotations

import numpy as np

from repro import rng as rng_mod
from repro.errors import DatasetError
from repro.ml.base import StandardScaler

#: Ensemble members (bootstrap resamples of the training rows).
N_MEMBERS = 4

#: Ridge penalty; tiny because the design is well-conditioned after
#: standardisation and the fit should stay as close to exact as the
#: bootstrap allows.
RIDGE_LAMBDA = 1e-6


class RidgeEnsemble:
    """``N_MEMBERS`` ridge fits on bootstrap resamples of (X, Y)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.scaler: StandardScaler | None = None
        #: (N_MEMBERS, D+1, O) stacked member weights.
        self.weights: np.ndarray | None = None
        #: (D+1, O) member-mean weights (the prediction the tier serves).
        self.mean_weights: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting.
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeEnsemble":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or x.shape[0] != y.shape[0]:
            raise DatasetError(
                f"bad surrogate training shapes: {x.shape} vs {y.shape}"
            )
        if x.shape[0] < x.shape[1] + 1:
            raise DatasetError(
                f"underdetermined surrogate fit: {x.shape[0]} rows for "
                f"{x.shape[1]} features"
            )
        self.scaler = StandardScaler()
        aug = self._augment(self.scaler.fit_transform(x))
        n_rows, n_cols = aug.shape
        rng = rng_mod.stream(self.seed, "surrogate-ensemble")
        ident = np.eye(n_cols)
        members = []
        for _ in range(N_MEMBERS):
            idx = rng.integers(0, n_rows, n_rows)
            a = aug[idx]
            members.append(np.linalg.solve(
                a.T @ a + RIDGE_LAMBDA * ident, a.T @ y[idx]))
        self.weights = np.stack(members)
        self.mean_weights = self.weights.mean(axis=0)
        return self

    @staticmethod
    def _augment(xs: np.ndarray) -> np.ndarray:
        """Append the intercept column."""
        return np.hstack([xs, np.ones((xs.shape[0], 1))])

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------
    def design(self, x: np.ndarray) -> np.ndarray:
        """Scaled, intercept-augmented design matrix for ``x``."""
        if self.scaler is None:
            raise DatasetError("RidgeEnsemble is not fitted")
        return self._augment(self.scaler.transform(
            np.asarray(x, dtype=np.float64)))

    def member_outputs(self, aug: np.ndarray, column: int = 0) -> np.ndarray:
        """Each member's prediction of one output column, ``(T, K)``.

        Column 0 is CPI — the head the confidence gate measures
        disagreement on.
        """
        return aug @ self.weights[:, :, column].T

    def predict_mean(self, aug: np.ndarray) -> np.ndarray:
        """Member-mean prediction of every output, ``(T, O)``."""
        return aug @ self.mean_weights

    # ------------------------------------------------------------------
    # Shape-invariant prediction (the scoring path).
    #
    # BLAS matrix products pick different instruction mixes for
    # different row counts, so a product's low bits depend on how many
    # pairs happen to share a batch. The tier's accept decisions and
    # accepted bits must not — serial, threaded and process builds
    # batch pairs differently but have to agree bit-for-bit — so the
    # scoring path computes with fixed-order elementwise accumulation
    # (CPI heads) and fixed per-pair shapes (signal products) instead.
    # ------------------------------------------------------------------
    def scale(self, x: np.ndarray) -> np.ndarray:
        """Standardised features; broadcasts over leading batch axes."""
        if self.scaler is None:
            raise DatasetError("RidgeEnsemble is not fitted")
        return ((np.asarray(x, dtype=np.float64) - self.scaler.mean_)
                / self.scaler.scale_)

    def member_cpi(self, z: np.ndarray) -> np.ndarray:
        """Each member's CPI prediction from scaled features, ``(..., K)``.

        Accumulates feature terms in fixed ascending order, so the
        result is bit-identical for any batching of the same rows.
        """
        if self.weights is None:
            raise DatasetError("RidgeEnsemble is not fitted")
        n_features = z.shape[-1]
        members = []
        tmp = None
        for weights in self.weights:  # (D+1, O); intercept row last
            cpi_w = weights[:, 0]
            acc = z[..., 0] * cpi_w[0]
            if tmp is None:
                tmp = np.empty_like(acc)
            for d in range(1, n_features):
                np.multiply(z[..., d], cpi_w[d], out=tmp)
                acc += tmp
            acc += cpi_w[n_features]
            members.append(acc)
        return np.stack(members, axis=-1)

    def signals_scaled(self, z: np.ndarray) -> np.ndarray:
        """Member-mean signal predictions for one pair, ``(T, O - 1)``.

        ``z`` must be a single pair's scaled ``(T, D)`` features: the
        product's shape then depends only on the trace's interval
        count, never on batch composition, keeping accepted bits
        deterministic.
        """
        if self.mean_weights is None:
            raise DatasetError("RidgeEnsemble is not fitted")
        aug = self._augment(np.ascontiguousarray(z))
        return aug @ self.mean_weights[:, 1:]

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    def to_payload(self, prefix: str) -> dict[str, np.ndarray]:
        """Arrays for a `SimCache` surrogate entry."""
        if self.weights is None or self.scaler is None:
            raise DatasetError("RidgeEnsemble is not fitted")
        return {
            f"{prefix}_weights": self.weights,
            f"{prefix}_scaler_mean": self.scaler.mean_,
            f"{prefix}_scaler_scale": self.scaler.scale_,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, np.ndarray], prefix: str,
                     seed: int = 0) -> "RidgeEnsemble":
        ens = cls(seed=seed)
        ens.weights = np.asarray(payload[f"{prefix}_weights"],
                                 dtype=np.float64)
        ens.mean_weights = ens.weights.mean(axis=0)
        ens.scaler = StandardScaler()
        ens.scaler.mean_ = np.asarray(payload[f"{prefix}_scaler_mean"],
                                      dtype=np.float64)
        ens.scaler.scale_ = np.asarray(payload[f"{prefix}_scaler_scale"],
                                       dtype=np.float64)
        return ens
