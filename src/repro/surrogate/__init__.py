"""Tier-0 learned surrogate for the interval simulator.

The related work (NeuroScalar, Concorde, CAPSim — see PAPERS.md)
replaces cycle-accurate simulation with a small learned predictor,
validated by rank correlation and fused with cheap analytical
components. This package is that idea applied one tier up: a compact
ridge ensemble learns the interval tier's own outputs and serves as a
fast path *above* :meth:`repro.uarch.interval_model.IntervalModel.
simulate_batch`, with a confidence gate that falls back to the full
interval pass whenever a prediction cannot be trusted. Gated pairs are
simulated exactly as today, so fallback output is bit-identical to the
interval tier.

Layout:

* :mod:`repro.surrogate.features` — engineered per-interval feature
  matrix from mode-adjusted jittered phase physics;
* :mod:`repro.surrogate.model` — the bootstrap ridge ensemble
  (closed-form fit, disagreement-based confidence);
* :mod:`repro.surrogate.tier` — :class:`SurrogateTier`: probe-corpus
  training, the Spearman + mean-relative-error agreement gate, the
  per-pair accept/fallback decision, and `SimCache` persistence.

Enable with ``REPRO_SURROGATE=1`` / ``--surrogate 1`` (see
:class:`repro.config.ExecConfig`).
"""

from repro.surrogate.features import (FEATURE_NAMES, FEATURE_VERSION,
                                      feature_matrix)
from repro.surrogate.model import RidgeEnsemble
from repro.surrogate.tier import (MAX_MRE, MIN_SPEARMAN, OOD_MARGIN,
                                  PROBE_INTERVALS, SurrogateTier,
                                  probe_corpus)

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_VERSION",
    "MAX_MRE",
    "MIN_SPEARMAN",
    "OOD_MARGIN",
    "PROBE_INTERVALS",
    "RidgeEnsemble",
    "SurrogateTier",
    "feature_matrix",
    "probe_corpus",
]
