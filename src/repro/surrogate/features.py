"""Engineered features for the tier-0 learned surrogate.

The interval tier's CPI decomposition is additive in a handful of
physics-derived terms (base issue limit, miss rates times penalties,
memory cost over exploitable MLP, store-queue pressure). The surrogate
regresses against exactly those terms — Concorde-style fusion of
analytical structure with a learned model — so a linear ensemble can
track the interval tier closely in-distribution while the per-feature
training range doubles as the out-of-distribution check.

Features are computed from the *mode-adjusted, jittered* physics
matrix — the same per-interval values the interval tier consumes — so
the surrogate predicts each interval's actual workload draw, not the
phase mean.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import PHYSICS_FIELDS

#: Bump when the feature definition changes: persisted surrogates
#: trained on the old features stop being addressable.
FEATURE_VERSION = 1

_F = {name: i for i, name in enumerate(PHYSICS_FIELDS)}

#: Column order of :func:`feature_matrix`.
FEATURE_NAMES = (
    "inv_eff_ilp",    # 1 / min(width, ilp) — the base CPI term
    "branch_k",       # branch mispredicts per instruction
    "icache_k",       # icache misses per instruction
    "uopc_miss",      # uop-cache miss fraction
    "tlb_k",          # iTLB + dTLB misses per instruction
    "mem_term",       # hierarchy miss cost / exploitable MLP
    "sq_term",        # sq_pressure * frac_store
    "frac_load",
    "frac_store",
    "frac_branch",
    "frac_fp",
    "l1d_k",
    "l2_k",
    "l3_k",
    "dirty_frac",
    "sq_pressure",
    "mlp_eff",        # MLP clipped to the mode's MSHR capacity
    "noise_scale",
)

N_FEATURES = len(FEATURE_NAMES)


def feature_matrix(model, physics: np.ndarray, mode) -> np.ndarray:
    """Per-interval feature matrix ``(..., T, N_FEATURES)``.

    Parameters
    ----------
    model:
        The :class:`~repro.uarch.interval_model.IntervalModel` whose
        machine parameters (effective width, MSHR capacity, cache
        latencies) the features fold in.
    physics:
        Mode-adjusted jittered physics, shape ``(T, len(PHYSICS_FIELDS))``
        — exactly what the interval tier's CPI decomposition reads —
        or a stack of such matrices ``(P, T, F)``; every operation is
        elementwise, so stacked rows carry the same bits as per-pair
        calls.
    mode:
        The :class:`~repro.uarch.modes.Mode` being predicted.
    """
    m = model.machine
    width = model.effective_width(mode)
    ilp = physics[..., _F["ilp"]]
    l1d = physics[..., _F["l1d_mpki"]]
    l2 = physics[..., _F["l2_mpki"]]
    l3 = physics[..., _F["l3_mpki"]]
    mem_cost = ((l1d - l2) * m.l2_latency
                + (l2 - l3) * m.l3_latency
                + l3 * m.memory_latency) / 1000.0
    mlp_eff = np.clip(physics[..., _F["mlp"]], 1.0, model.mshr_cap(mode))
    return np.stack([
        1.0 / np.minimum(width, ilp),
        physics[..., _F["branch_mpki"]] / 1000.0,
        physics[..., _F["icache_mpki"]] / 1000.0,
        1.0 - physics[..., _F["uopcache_hit_rate"]],
        (physics[..., _F["itlb_mpki"]]
         + physics[..., _F["dtlb_mpki"]]) / 1000.0,
        mem_cost / mlp_eff,
        physics[..., _F["sq_pressure"]] * physics[..., _F["frac_store"]],
        physics[..., _F["frac_load"]],
        physics[..., _F["frac_store"]],
        physics[..., _F["frac_branch"]],
        physics[..., _F["frac_fp"]],
        l1d / 1000.0,
        l2 / 1000.0,
        l3 / 1000.0,
        physics[..., _F["dirty_frac"]],
        physics[..., _F["sq_pressure"]],
        mlp_eff,
        physics[..., _F["noise_scale"]],
    ], axis=-1)
