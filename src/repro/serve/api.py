"""Typed, versioned request/response schema for the serving protocol.

The wire stays 4-byte-length-prefixed JSON (see
:mod:`repro.serve.protocol`); what this module adds is a typed layer
over the frames for the two batched inference ops. Both sides build
and consume frozen dataclasses — the server parses every incoming
``adapt``/``decide`` frame into a request object at the dispatch edge
(:func:`parse_request`) and serialises a response object back out
(``to_wire``); everything between those edges (validation, admission,
the micro-batcher, the executors, dedup) handles typed values, not raw
dicts.

Versioning: every typed frame carries ``schema_version``.

* Frames *without* the field are **legacy** (schema 1): pre-typed
  clients. They are accepted unchanged — the parser fills defaults and
  counts them under the ``serve.legacy_frames`` metric so operators
  can see when the old dialect finally drains from the fleet.
* Frames with a ``schema_version`` above :data:`SCHEMA_VERSION` are
  rejected with a typed ``bad_request`` — a newer client talking to an
  older daemon fails loudly instead of having new fields silently
  ignored.

Schema 2 additions over legacy: responses carry ``model_generation``
(the registry generation that computed them — the observable face of
the hot-swap fence), and requests may carry generation constraints:
``min_generation`` (serve only if the daemon has promoted at least
this far — "I require the retrained model") and ``pin_generation``
(serve only from exactly this generation — reproducibility across a
promotion window). Constraint violations come back as
``stale_generation`` errors carrying both sides of the comparison.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import ProtocolError
from repro.obs.metrics import METRICS

#: Current schema generation. 1 = the pre-typed raw-dict dialect
#: (implied by the field's absence); 2 = typed frames with model
#: generations.
SCHEMA_VERSION = 2


def _put_optional(frame: dict, obj, *fields: str) -> dict:
    """Copy non-``None`` attributes into the wire frame."""
    for field in fields:
        value = getattr(obj, field)
        if value is not None:
            frame[field] = value
    return frame


@dataclasses.dataclass(frozen=True)
class AdaptRequest:
    """One ``adapt`` query: full gated run of a resident corpus trace.

    Field values are carried as received — semantic validation
    (``trace_index`` in corpus range, generation constraints being
    ints) stays server-side so legacy and typed frames share one
    validation path and one set of error messages.
    """

    trace_index: int
    tenant: str = "default"
    budget_ms: float | None = None
    key: str | None = None
    min_generation: int | None = None
    pin_generation: int | None = None
    schema_version: int = SCHEMA_VERSION

    op = "adapt"

    def to_wire(self) -> dict:
        frame = {"op": "adapt", "schema_version": self.schema_version,
                 "tenant": self.tenant,
                 "trace_index": self.trace_index}
        return _put_optional(frame, self, "budget_ms", "key",
                             "min_generation", "pin_generation")

    @classmethod
    def from_wire(cls, frame: dict) -> "AdaptRequest":
        return cls(trace_index=frame.get("trace_index"),
                   tenant=str(frame.get("tenant", "default")),
                   budget_ms=frame.get("budget_ms"),
                   key=frame.get("key"),
                   min_generation=frame.get("min_generation"),
                   pin_generation=frame.get("pin_generation"),
                   schema_version=int(frame.get("schema_version", 1)))


@dataclasses.dataclass(frozen=True)
class DecideRequest:
    """One ``decide`` query: mode-switch inference over counter rows.

    ``window`` is the raw list of counter rows exactly as framed;
    shape validation (non-empty, rows of counter-set width) is
    server-side, against the serving predictor.
    """

    mode: str
    window: Any
    tenant: str = "default"
    budget_ms: float | None = None
    key: str | None = None
    min_generation: int | None = None
    pin_generation: int | None = None
    schema_version: int = SCHEMA_VERSION

    op = "decide"

    def to_wire(self) -> dict:
        frame = {"op": "decide", "schema_version": self.schema_version,
                 "tenant": self.tenant, "mode": self.mode,
                 "window": self.window}
        return _put_optional(frame, self, "budget_ms", "key",
                             "min_generation", "pin_generation")

    @classmethod
    def from_wire(cls, frame: dict) -> "DecideRequest":
        return cls(mode=frame.get("mode"),
                   window=frame.get("window"),
                   tenant=str(frame.get("tenant", "default")),
                   budget_ms=frame.get("budget_ms"),
                   key=frame.get("key"),
                   min_generation=frame.get("min_generation"),
                   pin_generation=frame.get("pin_generation"),
                   schema_version=int(frame.get("schema_version", 1)))


@dataclasses.dataclass(frozen=True)
class AdaptResponse:
    """Answer to :class:`AdaptRequest`.

    ``result`` is the digest-bearing adaptation payload
    (:func:`repro.serve.protocol.adapt_payload` — bit-identity
    contract unchanged); ``tier`` names the simulation tier that
    served it; ``model_generation`` the registry generation whose
    model computed it.
    """

    result: dict
    tier: str
    model_generation: int
    schema_version: int = SCHEMA_VERSION

    def to_wire(self) -> dict:
        return {"result": self.result, "tier": self.tier,
                "model_generation": self.model_generation,
                "schema_version": self.schema_version}

    @classmethod
    def from_wire(cls, payload: dict) -> "AdaptResponse":
        return cls(result=payload["result"], tier=payload["tier"],
                   model_generation=int(
                       payload.get("model_generation", 0)),
                   schema_version=int(
                       payload.get("schema_version", 1)))


@dataclasses.dataclass(frozen=True)
class DecideResponse:
    """Answer to :class:`DecideRequest`.

    ``probs``/``decisions``/``digest`` keep the exact legacy payload
    keys and values (:func:`repro.serve.protocol.decide_payload`);
    ``model_generation`` stamps the predictor generation that
    inferred them.
    """

    mode: str
    probs: list
    decisions: list
    digest: str
    model_generation: int
    schema_version: int = SCHEMA_VERSION

    def to_wire(self) -> dict:
        return {"mode": self.mode, "probs": self.probs,
                "decisions": self.decisions, "digest": self.digest,
                "model_generation": self.model_generation,
                "schema_version": self.schema_version}

    @classmethod
    def from_wire(cls, payload: dict) -> "DecideResponse":
        return cls(mode=payload["mode"], probs=payload["probs"],
                   decisions=payload["decisions"],
                   digest=payload["digest"],
                   model_generation=int(
                       payload.get("model_generation", 0)),
                   schema_version=int(
                       payload.get("schema_version", 1)))


@dataclasses.dataclass(frozen=True)
class HealthStatus:
    """Typed view of the ``health`` op's liveness/degradation surface.

    All pre-existing keys are preserved verbatim; schema 2 adds
    ``model_generation`` (the serving registry generation) and
    ``online`` (ring occupancy, drift detector state, last shadow
    verdict — ``None`` when the daemon runs without the continual
    loop).
    """

    ready: bool
    uptime_s: float
    init_s: float
    requests: int
    queue_depth: dict
    drain_rps: dict
    breakers: dict
    watchdog: dict
    batch_timeout_s: float
    checkpoint: dict | None
    dedup_entries: int
    model_generation: int = 0
    online: dict | None = None
    schema_version: int = SCHEMA_VERSION

    def to_wire(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_wire(cls, payload: dict) -> "HealthStatus":
        fields = {f.name for f in dataclasses.fields(cls)}
        known = {k: v for k, v in payload.items() if k in fields}
        known.setdefault("schema_version", 1)
        return cls(**known)


def parse_request(frame: dict) -> AdaptRequest | DecideRequest:
    """Typed request for an incoming batched-op frame.

    Legacy frames (no ``schema_version``) parse with defaults and
    count under ``serve.legacy_frames``; frames claiming a schema the
    daemon does not speak raise :class:`ProtocolError` so the client
    gets a loud ``bad_request`` instead of silent field drops.
    """
    version = frame.get("schema_version")
    if version is None:
        METRICS.incr("serve.legacy_frames")
    elif (not isinstance(version, int) or isinstance(version, bool)
            or not 1 <= version <= SCHEMA_VERSION):
        raise ProtocolError(
            f"unsupported schema_version {version!r}; this daemon "
            f"speaks versions 1..{SCHEMA_VERSION}"
        )
    op = frame.get("op")
    if op == "adapt":
        return AdaptRequest.from_wire(frame)
    if op == "decide":
        return DecideRequest.from_wire(frame)
    raise ProtocolError(f"op {op!r} has no typed request form")


__all__ = [
    "SCHEMA_VERSION",
    "AdaptRequest",
    "AdaptResponse",
    "DecideRequest",
    "DecideResponse",
    "HealthStatus",
    "parse_request",
]
