"""Adaptation-as-a-service: the persistent serving daemon.

Everything the paper's pipeline computes per invocation —
corpus synthesis, predictor training, worker-pool spin-up, arena
packing — is paid once here, at daemon startup; requests then ride
the resident state. See :mod:`repro.serve.server` for the request
lifecycle, :mod:`repro.serve.protocol` for the wire format, and
:mod:`repro.serve.supervisor` / :mod:`repro.serve.checkpoint` for the
failure-containment and fast-restart layers.
"""

from repro.serve.admission import (DrainTracker, TenantLedger,
                                   busy_response, retry_after_ms)
from repro.serve.api import (SCHEMA_VERSION, AdaptRequest, AdaptResponse,
                             DecideRequest, DecideResponse, HealthStatus,
                             parse_request)
from repro.serve.batcher import MicroBatcher
from repro.serve.checkpoint import (corpus_fingerprint, load_checkpoint,
                                    save_checkpoint)
from repro.serve.client import ServeClient, wait_until_ready
from repro.serve.protocol import BATCHED_OPS, MAX_FRAME_BYTES, OPS
from repro.serve.protocol import adapt_payload, decide_payload
from repro.serve.protocol import encode_frame, recv_frame, send_frame
from repro.serve.server import (AdaptationServer, DAEMON_CRASH_EXIT,
                                build_server, const_predictor,
                                quick_forest_predictor, serving_corpus)
from repro.serve.supervisor import (BREAKER_MODES, BatcherSupervisor,
                                    ServeCircuitBreaker, run_supervised)

__all__ = [
    "AdaptRequest",
    "AdaptResponse",
    "AdaptationServer",
    "BATCHED_OPS",
    "BREAKER_MODES",
    "BatcherSupervisor",
    "DAEMON_CRASH_EXIT",
    "DecideRequest",
    "DecideResponse",
    "DrainTracker",
    "HealthStatus",
    "MAX_FRAME_BYTES",
    "MicroBatcher",
    "OPS",
    "SCHEMA_VERSION",
    "ServeCircuitBreaker",
    "ServeClient",
    "TenantLedger",
    "adapt_payload",
    "build_server",
    "busy_response",
    "const_predictor",
    "corpus_fingerprint",
    "decide_payload",
    "encode_frame",
    "load_checkpoint",
    "parse_request",
    "quick_forest_predictor",
    "recv_frame",
    "retry_after_ms",
    "run_supervised",
    "save_checkpoint",
    "send_frame",
    "serving_corpus",
    "wait_until_ready",
]
