"""Adaptation-as-a-service: the persistent serving daemon.

Everything the paper's pipeline computes per invocation —
corpus synthesis, predictor training, worker-pool spin-up, arena
packing — is paid once here, at daemon startup; requests then ride
the resident state. See :mod:`repro.serve.server` for the request
lifecycle and :mod:`repro.serve.protocol` for the wire format.
"""

from repro.serve.admission import TenantLedger, busy_response
from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient, wait_until_ready
from repro.serve.protocol import BATCHED_OPS, MAX_FRAME_BYTES, OPS
from repro.serve.protocol import adapt_payload, decide_payload
from repro.serve.protocol import encode_frame, recv_frame, send_frame
from repro.serve.server import AdaptationServer, build_server
from repro.serve.server import const_predictor, quick_forest_predictor
from repro.serve.server import serving_corpus

__all__ = [
    "AdaptationServer",
    "BATCHED_OPS",
    "MAX_FRAME_BYTES",
    "MicroBatcher",
    "OPS",
    "ServeClient",
    "TenantLedger",
    "adapt_payload",
    "build_server",
    "busy_response",
    "const_predictor",
    "decide_payload",
    "encode_frame",
    "quick_forest_predictor",
    "recv_frame",
    "send_frame",
    "serving_corpus",
    "wait_until_ready",
]
