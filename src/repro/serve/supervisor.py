"""Serve-side failure containment: breaker, watchdog, re-exec loop.

Three independent layers, each bounding a different blast radius (the
full ladder is drawn in DESIGN.md):

* :class:`ServeCircuitBreaker` — per-op degradation ladder. Repeated
  executor failures walk an op down ``batched → serial → shed``; after
  a cooldown the breaker goes half-open and routes one probe at the
  next level down, stepping back toward batched only on probe success.
  A wedged executor therefore costs throughput (serial) and then
  availability for *that op only* (shed with a ``retry_after_ms``
  hint) — never the whole daemon.
* :class:`BatcherSupervisor` — a watchdog thread that polls every
  batcher's in-flight age and abandons batches older than
  ``REPRO_SERVE_BATCH_TIMEOUT`` with a typed
  :class:`~repro.errors.BatchTimeoutError`. Only the in-flight
  requests fail; queued requests drain through the replacement
  consumer thread the batcher spawns.
* :func:`run_supervised` — process-level supervision for
  ``repro serve --supervise``: the parent re-runs the daemon command
  when it dies uncleanly, within a bounded restart budget
  (``REPRO_SERVE_RESTARTS``). Paired with the warm-state checkpoint
  (:mod:`repro.serve.checkpoint`), a crashed daemon is back at ready
  in a fraction of a cold start.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time

from repro.errors import BatchTimeoutError
from repro.obs.metrics import METRICS
from repro.serve.batcher import MicroBatcher

#: Execution level per breaker state (index == level).
BREAKER_MODES = ("batched", "serial", "shed")


class ServeCircuitBreaker:
    """Per-op breaker over the ``batched → serial → shed`` ladder.

    ``level`` is the current degradation (0 = closed/batched). Each
    run of ``threshold`` consecutive failures escalates one level and
    starts a ``cooldown_s`` clock. Once the cooldown elapses the
    breaker is *half-open*: :meth:`route` sends the next request to
    the level below as a probe — a probe success steps down (repeated
    successes walk all the way back to batched), a probe failure
    re-opens the current level and restarts the cooldown.

    Load sheds (:class:`~repro.errors.BusyError`) are **not**
    failures: a full queue is back-pressure working, not the executor
    misbehaving. Thread-safe; ``clock`` is injectable for tests.
    """

    def __init__(self, threshold: int, cooldown_s: float,
                 name: str = "op", clock=time.monotonic) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(
                f"cooldown_s must be > 0, got {cooldown_s}"
            )
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._failures = 0
        self._trips = 0
        self._opened_at = 0.0
        self._probing = False

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def state(self) -> str:
        """Classic breaker state: closed / open / half_open."""
        with self._lock:
            if self._level == 0:
                return "closed"
            if self._clock() - self._opened_at >= self.cooldown_s:
                return "half_open"
            return "open"

    def route(self) -> int:
        """Effective execution level for the next request.

        0 = batched, 1 = serial per-request, 2 = shed. In half-open
        state this returns one level below the tripped level and arms
        the probe: the outcome of that request decides whether the
        breaker steps down or re-opens.
        """
        with self._lock:
            if self._level == 0:
                return 0
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._probing = True
                return self._level - 1
            return self._level

    def record_success(self) -> None:
        """A routed request completed; probes step the ladder down."""
        with self._lock:
            self._failures = 0
            if self._probing and self._level > 0:
                self._probing = False
                self._level -= 1
                if self._level > 0:
                    # Still degraded: a fresh cooldown gates the next
                    # probe toward fully closed.
                    self._opened_at = self._clock()

    def record_failure(self) -> None:
        """A routed request failed (executor fault, batch timeout)."""
        with self._lock:
            if self._probing:
                # The probe failed: stay at the current level and
                # restart the cooldown before probing again.
                self._probing = False
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.threshold:
                self._failures = 0
                if self._level < len(BREAKER_MODES) - 1:
                    self._level += 1
                self._trips += 1
                self._opened_at = self._clock()
                METRICS.incr("serve.breaker_trips")

    def snapshot(self) -> dict:
        """Health-op projection of the breaker."""
        state = self.state()
        with self._lock:
            return {
                "level": self._level,
                "mode": BREAKER_MODES[self._level],
                "state": state,
                "failures": self._failures,
                "trips": self._trips,
            }


class BatcherSupervisor:
    """Watchdog thread over a set of micro-batchers.

    Polls each batcher's :meth:`~MicroBatcher.inflight_age` and, when
    a batch has been executing longer than ``timeout_s``, abandons it:
    the in-flight requests fail with a typed
    :class:`~repro.errors.BatchTimeoutError`, a replacement consumer
    thread takes over the untouched queue, and the op's breaker (when
    attached) records the failure so repeated hangs degrade the op.
    """

    def __init__(self, batchers: dict[str, MicroBatcher],
                 timeout_s: float,
                 breakers: dict[str, ServeCircuitBreaker] | None = None,
                 poll_s: float | None = None) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.batchers = batchers
        self.timeout_s = timeout_s
        self.breakers = breakers or {}
        # Poll fast enough to catch a hang well before ~2x timeout,
        # slow enough to stay invisible in profiles.
        self.poll_s = (poll_s if poll_s is not None
                       else min(0.25, max(0.01, timeout_s / 5.0)))
        self.trips = 0
        self.last_check: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "BatcherSupervisor":
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-supervisor",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def check_once(self) -> int:
        """One watchdog sweep; returns requests failed (tests call
        this directly for a deterministic single check)."""
        failed = 0
        for name, batcher in self.batchers.items():
            age = batcher.inflight_age()
            if age is None or age <= self.timeout_s:
                continue
            error = BatchTimeoutError(
                f"batch on {name!r} exceeded "
                f"REPRO_SERVE_BATCH_TIMEOUT ({self.timeout_s}s); "
                f"in flight {age:.3f}s — in-flight requests failed, "
                f"queued requests re-served by the restarted batcher"
            )
            n = batcher.abandon_inflight(error)
            if n:
                failed += n
                self.trips += 1
                METRICS.incr("serve.watchdog_trips")
                breaker = self.breakers.get(name)
                if breaker is not None:
                    breaker.record_failure()
        self.last_check = time.monotonic()
        return failed

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_s):
            self.check_once()

    def snapshot(self) -> dict:
        """Health-op projection of the watchdog."""
        return {
            "timeout_s": self.timeout_s,
            "poll_s": self.poll_s,
            "trips": self.trips,
            "batcher_restarts": {name: b.restarts
                                 for name, b in self.batchers.items()},
        }


def run_supervised(cmd: list[str], restarts: int,
                   announce=None) -> int:
    """Run a daemon command, re-execing it on unclean death.

    The parent stays tiny (no corpus, no models — just this loop) and
    relaunches ``cmd`` whenever it exits nonzero, up to ``restarts``
    times. A clean exit (0) ends supervision; exhausting the budget
    returns the last exit code. With a checkpoint path in the child's
    environment, each relaunch warm-starts from the checkpoint instead
    of rebuilding corpus and models.

    ``announce`` (a ``str -> None`` callable, default: stderr print)
    reports each restart so operators can see the crash loop.
    """
    if announce is None:
        def announce(msg: str) -> None:
            print(msg, file=sys.stderr, flush=True)
    attempts = 0
    while True:
        code = subprocess.call(cmd)
        if code == 0:
            return 0
        if attempts >= restarts:
            announce(
                f"[repro serve] daemon exited with {code}; restart "
                f"budget ({restarts}) exhausted — giving up"
            )
            return code
        attempts += 1
        announce(
            f"[repro serve] daemon exited with {code}; restarting "
            f"({attempts}/{restarts})"
        )


__all__ = ["BREAKER_MODES", "BatcherSupervisor", "ServeCircuitBreaker",
           "run_supervised"]
