"""The adaptation-serving daemon.

A batch CLI invocation pays the full cold-start bill per request:
import the package, synthesize or load the trace corpus, train (or
unpickle) the predictor, spin up worker pools, then answer one
question and throw it all away. :class:`AdaptationServer` loads once
and stays resident — the corpus lives in a daemon-lifetime
:class:`~repro.exec.arena.TraceArena`, worker pools stay warm, the
dual predictor stays trained, the surrogate tier (when enabled) stays
fitted and the SimCache stays open — and answers adaptation requests
over a local socket for the life of the process.

Request lifecycle::

    accept ──▶ recv_frame ──▶ validate ──▶ micro-batch ──▶ execute
      │           (protocol)    (inline:       (flush on      (one
      │                         ping/stats/    max-batch or   run_many /
      │                         shutdown)      max-wait-µs)   predict)
      └────────────────────────◀── send_frame ◀── payload ◀───┘

Batching is invisible to correctness: ``adapt`` batches execute as one
:meth:`~repro.core.adaptive_cpu.AdaptiveCPU.run_many` call, which is
bit-identical to per-trace :meth:`run` calls (the repo-wide batched-
path invariant), and ``decide`` batches concatenate telemetry windows
into one ``predict_proba`` per (mode, model) — row-wise inference, so
slicing the stacked result back apart returns identical bits.

Resilience (see the failure ladder in DESIGN.md):

* a :class:`~repro.serve.supervisor.BatcherSupervisor` watchdog
  abandons batches hung past ``REPRO_SERVE_BATCH_TIMEOUT``, failing
  only the in-flight requests with a typed ``timeout`` response;
* each batched op runs behind a
  :class:`~repro.serve.supervisor.ServeCircuitBreaker` that degrades
  ``batched → serial → shed`` on repeated failures and probes its way
  back;
* requests carrying an idempotency ``key`` are deduplicated, so a
  client retrying (or hedging) after a dropped/corrupted response
  frame observes the original execution's payload instead of running
  twice;
* with a checkpoint path configured, :func:`build_server` restores
  warm state (corpus + trained predictor + surrogate tier) from a
  CRC-validated checkpoint and writes one after any cold build, so a
  supervised restart reaches ready in a fraction of a cold start.
"""

from __future__ import annotations

import collections
import os
import signal
import socket
import threading
import time

import multiprocessing
import numpy as np

from repro.config import active_exec_config
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.errors import BatchTimeoutError, BusyError, CheckpointError
from repro.errors import ProtocolError, ServeClosedError, ServeError
from repro.exec import faults
from repro.exec.parallel import ParallelMap, close_pools
from repro.exec.parallel import default_parallel_map
from repro.ml.base import Estimator
from repro.ml.forest import RandomForestClassifier
from repro.obs import tracer
from repro.obs.metrics import METRICS
from repro.online.drift import DriftDetector
from repro.online.learner import OnlineLearner
from repro.online.registry import ModelRegistry
from repro.online.ringbuf import TelemetryRing
from repro.serve.admission import (TenantLedger, busy_response,
                                   retry_after_ms)
from repro.serve.api import (AdaptRequest, AdaptResponse, DecideRequest,
                             DecideResponse, HealthStatus, parse_request)
from repro.serve.batcher import MicroBatcher
from repro.serve.checkpoint import (corpus_fingerprint, load_checkpoint,
                                    save_checkpoint)
from repro.serve.protocol import BATCHED_OPS, OPS, adapt_payload
from repro.serve.protocol import decide_payload, recv_frame, send_frame
from repro.serve.supervisor import BatcherSupervisor, ServeCircuitBreaker
from repro.uarch.modes import Mode
from repro.workloads.generator import TraceSpec, generate_application

#: Exit code of an injected ``daemon_crash`` (and the supervised
#: restart tests' marker for "died as planned, restart me").
DAEMON_CRASH_EXIT = 86

#: Completed idempotency-key entries retained for dedup lookups.
DEDUP_CAPACITY = 4096

#: Workload families the deterministic serving corpus cycles through —
#: the same coverage mix the perf benchmarks use.
_FAMILIES = ("pointer_chase", "compute_fp", "store_burst", "branchy",
             "bandwidth", "compute_int", "dep_chain", "media")


def serving_corpus(n_apps: int = 8, workloads_per_app: int = 2,
                   intervals: int = 96, seed: int = 11,
                   ) -> list[TraceSpec]:
    """The deterministic trace corpus a daemon serves requests against.

    Requests address traces by corpus index, so client and server must
    agree on the corpus; the same (seed, shape) always yields the same
    traces.
    """
    traces = []
    for i in range(n_apps):
        family = _FAMILIES[i % len(_FAMILIES)]
        app = generate_application(f"serveapp{i}", "serve",
                                   {family: 0.7, "balanced": 0.3},
                                   seed=seed + i)
        for w in range(workloads_per_app):
            traces.append(app.workload(w).trace(intervals, 0))
    return traces


class ConstProbModel(Estimator):
    """Fixed-probability model (picklable; the zero-training option)."""

    def __init__(self, prob: float) -> None:
        self.prob = prob
        self.decision_threshold = 0.5

    def fit(self, x, y):
        return self

    def predict_proba(self, x):
        return np.full(np.asarray(x).shape[0], self.prob)


def const_predictor() -> DualModePredictor:
    """A fixed-probability dual predictor (instant startup)."""
    return DualModePredictor(
        name="serve_const",
        models={Mode.HIGH_PERF: ConstProbModel(0.7),
                Mode.LOW_POWER: ConstProbModel(0.4)},
        counter_ids=np.array([0, 1, 2, 3]),
        granularity_factor=1,
    )


def quick_forest_predictor(traces: list[TraceSpec],
                           n_train: int = 6, n_trees: int = 12,
                           max_depth: int = 6, seed: int = 3,
                           ) -> DualModePredictor:
    """Train a small dual random forest on a slice of the corpus.

    The realistic serving model: per-window inference walks every tree,
    so batching amortises real per-call cost (unlike the const stub).
    """
    counter_ids = np.arange(12)
    subset = traces[:max(2, n_train)]
    models: dict[Mode, Estimator] = {}
    for mode in Mode:
        dataset = build_mode_dataset(subset, mode, counter_ids)
        forest = RandomForestClassifier(n_trees=n_trees,
                                        max_depth=max_depth, seed=seed)
        forest.fit(dataset.x, dataset.y)
        models[mode] = forest
    return DualModePredictor(name="serve_forest", models=models,
                             counter_ids=counter_ids,
                             granularity_factor=1)


class _StaleGeneration:
    """Per-item executor verdict: a generation constraint failed.

    Returned in place of a typed response for items whose
    ``pin_generation`` did not match the batch's generation snapshot.
    Only the constrained item fails — its batch partners are served
    normally — and the dispatcher turns this marker into a
    ``stale_generation`` error frame.
    """

    __slots__ = ("requested", "current", "detail")

    def __init__(self, requested: int, current: int,
                 detail: str) -> None:
        self.requested = requested
        self.current = current
        self.detail = detail


class _DedupEntry:
    """Execution record for one idempotency key.

    In flight until ``event`` is set; then either ``payload`` (the
    original execution's result, returned to every retry/hedge) or
    ``error`` (delivered to concurrent waiters, after which the entry
    is dropped so a later retry re-executes).
    """

    __slots__ = ("event", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: dict | None = None
        self.error: BaseException | None = None


def _tier_from_deltas(accepted: int, fallback: int) -> str:
    """Which simulation tier served a batch, from counter deltas."""
    if accepted > 0 and fallback == 0:
        return "surrogate"
    if accepted > 0:
        return "mixed"
    return "interval"


class AdaptationServer:
    """Persistent daemon serving adaptation requests over a socket.

    ``address`` is a filesystem path (AF_UNIX, the default transport)
    or a ``(host, port)`` tuple (AF_INET, for cross-host smoke tests);
    port 0 binds an ephemeral port published via :attr:`address`.
    Batching/admission knobs default to the active
    :class:`~repro.config.ExecConfig` (``REPRO_SERVE_*``).
    """

    def __init__(self, cpu: AdaptiveCPU, traces: list[TraceSpec],
                 address: str | tuple[str, int],
                 max_batch: int | None = None,
                 max_wait_us: int | None = None,
                 queue_bound: int | None = None,
                 batch_timeout_s: float | None = None,
                 breaker_threshold: int | None = None,
                 breaker_cooldown_s: float | None = None,
                 init_s: float = 0.0,
                 checkpoint_info: dict | None = None,
                 pmap: ParallelMap | None = None,
                 online: bool | None = None,
                 generation: int = 0,
                 checkpoint_path: str | None = None,
                 fingerprint: str | None = None) -> None:
        config = active_exec_config()
        # Generation fence: the serving model lives behind the
        # registry; ``self.cpu`` is a property resolving the current
        # entry, and executors snapshot an entry once per batch.
        self.registry = ModelRegistry(cpu, generation=generation)
        self.traces = list(traces)
        self.address = address
        self.max_batch = (max_batch if max_batch is not None
                          else config.serve_batch_max)
        self.max_wait_us = (max_wait_us if max_wait_us is not None
                            else config.serve_batch_wait_us)
        self.queue_bound = (queue_bound if queue_bound is not None
                            else config.serve_queue_bound)
        self.batch_timeout_s = (
            batch_timeout_s if batch_timeout_s is not None
            else config.serve_batch_timeout_s)
        self.init_s = init_s
        self.checkpoint_info = checkpoint_info
        self._pmap = pmap if pmap is not None else default_parallel_map()
        self.ledger = TenantLedger()
        self._listener: socket.socket | None = None
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False
        self._started = time.monotonic()
        self._requests = 0
        self._executors = {"adapt": self._execute_adapt,
                           "decide": self._execute_decide}
        self._batchers = {
            op: MicroBatcher(executor, self.max_batch,
                             self.max_wait_us, self.queue_bound,
                             ledger=self.ledger, name=op)
            for op, executor in self._executors.items()
        }
        threshold = (breaker_threshold if breaker_threshold is not None
                     else config.serve_breaker_threshold)
        cooldown = (breaker_cooldown_s
                    if breaker_cooldown_s is not None
                    else config.serve_breaker_cooldown_s)
        self.breakers = {
            op: ServeCircuitBreaker(threshold, cooldown, name=op)
            for op in self._batchers
        }
        self.supervisor = BatcherSupervisor(
            self._batchers, self.batch_timeout_s, breakers=self.breakers)
        self._dedup: "collections.OrderedDict[str, _DedupEntry]" = \
            collections.OrderedDict()
        self._dedup_lock = threading.Lock()
        # Continual-adaptation loop (REPRO_ONLINE / --online): sampled
        # telemetry ring, drift detector and the background learner.
        online_cfg = config.online
        self.online_enabled = (online if online is not None
                               else online_cfg.enabled)
        self._checkpoint_path = checkpoint_path
        self._fingerprint = fingerprint
        self.ring: TelemetryRing | None = None
        self.detector: DriftDetector | None = None
        self.learner: OnlineLearner | None = None
        if self.online_enabled:
            self.ring = TelemetryRing(online_cfg.ring,
                                      sample=online_cfg.sample)
            self.detector = DriftDetector(
                online_cfg.drift_window, online_cfg.drift_threshold,
                n_traces=len(self.traces))
            self.learner = OnlineLearner(
                self.registry, self.ring, self.detector, self.traces,
                pmap=self._pmap, interval_s=online_cfg.interval_s,
                on_promote=self.persist_generation)

    @property
    def cpu(self) -> AdaptiveCPU:
        """The current serving model (registry generation N).

        Kept as an attribute-compatible property so existing callers
        (stats, validation, tests doing ``daemon.cpu.run``) follow
        promotions transparently. Executors do NOT use it per item —
        they snapshot one :class:`~repro.online.registry.ModelEntry`
        per batch, which is what keeps in-flight batches
        digest-stable across a swap.
        """
        return self.registry.current().cpu

    def persist_generation(self, generation: int) -> None:
        """Rewrite the serve checkpoint to the promoted generation.

        Called by the learner after a swap so a supervised restart
        resumes warm on the *new* model instead of replaying the
        promotion. Best-effort: a failed write costs warm restarts,
        never serving.
        """
        if not self._checkpoint_path or self._fingerprint is None:
            return
        entry = self.registry.current()
        try:
            save_checkpoint(self._checkpoint_path, entry.cpu,
                            self.traces, self._fingerprint,
                            generation=generation)
        except CheckpointError:
            METRICS.incr("serve.checkpoint_save_failed")
        else:
            METRICS.incr("serve.checkpoint_saves")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "AdaptationServer":
        """Bind, install the resident arena, spawn the accept loop."""
        if isinstance(self.address, tuple):
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(self.address)
            self.address = listener.getsockname()[:2]
        else:
            if os.path.exists(self.address):
                os.unlink(self.address)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.address)
        listener.listen(64)
        self._listener = listener
        # Resident corpus: fan-outs during the daemon's lifetime ship
        # arena indices instead of re-packing the corpus per request.
        if self._pmap.uses_processes(len(self.traces), "adaptive_prepare"):
            self.cpu.install_resident_arena(self.traces)
        self.supervisor.start()
        if self.learner is not None:
            self.learner.start()
        accept = threading.Thread(target=self._accept_loop,
                                  name="repro-serve-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        watcher = threading.Thread(target=self._watch_stop,
                                   name="repro-serve-watcher", daemon=True)
        watcher.start()
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`request_stop` (or a signal) fires."""
        self._stopped.wait()

    def request_stop(self) -> None:
        """Ask the watcher thread to run shutdown (signal-safe)."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into a clean :meth:`request_stop`."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda _s, _f: self.request_stop())

    def _watch_stop(self) -> None:
        self._stop.wait()
        self.shutdown()

    def shutdown(self) -> None:
        """Release every resident resource; idempotent.

        Closes the listener and live connections, drains the batchers,
        unmaps the resident arena, tears down warm worker pools and
        then verifies nothing leaked: any worker process still alive
        after the grace period is terminated and reported as a
        :class:`ServeError` — a daemon must not strand children.
        """
        with self._shutdown_lock:
            if self._shutdown_done:
                return
            self._shutdown_done = True
        self._stop.set()
        if self.learner is not None:
            self.learner.stop()
        self.supervisor.stop()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for batcher in self._batchers.values():
            batcher.close()
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self.registry.close()
        close_pools()
        if (not isinstance(self.address, tuple)
                and os.path.exists(self.address)):
            try:
                os.unlink(self.address)
            except OSError:
                pass
        leaked = self._reap_children()
        self._stopped.set()
        if leaked:
            raise ServeError(
                f"{leaked} worker process(es) survived shutdown"
            )

    @staticmethod
    def _reap_children(grace_s: float = 2.0) -> int:
        """Wait for pool workers to exit; terminate stragglers."""
        deadline = time.monotonic() + grace_s
        while multiprocessing.active_children():
            if time.monotonic() >= deadline:
                break
            time.sleep(0.05)
        leaked = multiprocessing.active_children()
        for child in leaked:
            child.terminate()
            child.join(timeout=1.0)
        return len(leaked)

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown
            with self._conn_lock:
                self._conns.add(conn)
            handler = threading.Thread(
                target=self._handle_conn, args=(conn,),
                name="repro-serve-conn", daemon=True)
            handler.start()
            self._threads.append(handler)

    def _handle_conn(self, conn: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                try:
                    request = recv_frame(conn)
                except (ProtocolError, OSError):
                    return
                if request is None:
                    return
                response = self._dispatch(request)
                try:
                    send_frame(conn, response,
                               fault_key=f"serve.send/"
                                         f"{request.get('op')}")
                except OSError:
                    return
                if request.get("op") == "shutdown":
                    # Only now that the acknowledgement is on the wire:
                    # shutdown closes every connection, including this
                    # one.
                    self.request_stop()
                    return
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, request: dict) -> dict:
        """Route one validated request; always returns a response."""
        request_id = request.get("id")
        op = request.get("op")
        self._requests += 1
        METRICS.incr("serve.requests")
        if op not in OPS:
            return {"id": request_id, "ok": False, "error": "bad_request",
                    "detail": f"unknown op {op!r}; expected one of "
                              f"{list(OPS)}"}
        if op == "ping":
            return {"id": request_id, "ok": True, "op": "ping"}
        if op == "stats":
            return {"id": request_id, "ok": True, "op": "stats",
                    "stats": self._stats()}
        if op == "health":
            return {"id": request_id, "ok": True, "op": "health",
                    "health": self._health()}
        if op == "shutdown":
            # The connection handler triggers the actual stop after the
            # acknowledgement frame has been written back.
            return {"id": request_id, "ok": True, "op": "shutdown"}
        # Batched inference ops: the raw frame becomes a typed request
        # at this edge; everything downstream (validation, batcher,
        # executors, dedup) handles typed values.
        try:
            typed = parse_request(request)
        except ProtocolError as exc:
            return {"id": request_id, "ok": False, "error": "bad_request",
                    "detail": str(exc)}
        tenant = typed.tenant
        error = self._validate(op, typed)
        if error is not None:
            return {"id": request_id, "ok": False, "error": "bad_request",
                    "detail": error}
        if typed.min_generation is not None:
            current = self.registry.generation
            if current < typed.min_generation:
                # Monotonic generations make this pre-check safe: the
                # executor's snapshot can only be newer.
                return {"id": request_id, "ok": False,
                        "error": "stale_generation",
                        "detail": f"daemon serves generation {current}; "
                                  f"request requires >= "
                                  f"{typed.min_generation}",
                        "requested": typed.min_generation,
                        "current": current}
        if faults.should_inject("daemon_crash",
                                f"serve.dispatch/{op}"):
            # The whole process dies mid-dispatch, exactly like a
            # segfaulting native extension: no response frame, every
            # connection drops, the supervising parent re-execs.
            os._exit(DAEMON_CRASH_EXIT)
        breaker = self.breakers[op]
        level = breaker.route()
        try:
            with tracer.span("serve.request", op=op, tenant=tenant,
                             level=level):
                payload = self._execute_keyed(op, typed, tenant,
                                              level)
        except BusyError as exc:
            # Load shed (queue full or breaker level 2): back-pressure
            # working as designed, not an executor failure — the
            # breaker does not record it either way.
            return busy_response(request_id, exc.queue_depth,
                                 self.queue_bound,
                                 retry_after=exc.retry_after_ms)
        except ServeClosedError:
            return {"id": request_id, "ok": False, "error": "closed"}
        except BatchTimeoutError as exc:
            breaker.record_failure()
            return {"id": request_id, "ok": False, "error": "timeout",
                    "detail": str(exc), "retry": True}
        except Exception as exc:  # executor failure, typed for the peer
            breaker.record_failure()
            return {"id": request_id, "ok": False, "error": "internal",
                    "detail": f"{type(exc).__name__}: {exc}"}
        breaker.record_success()
        if isinstance(payload, _StaleGeneration):
            # The executor's batch snapshot did not satisfy the item's
            # pin; not an executor failure, so the breaker stays green.
            return {"id": request_id, "ok": False,
                    "error": "stale_generation",
                    "detail": payload.detail,
                    "requested": payload.requested,
                    "current": payload.current}
        # Typed responses serialise here, at the wire edge; raw dicts
        # (test doubles, future pass-through ops) are sent as-is.
        wire = payload.to_wire() if hasattr(payload, "to_wire") \
            else payload
        return {"id": request_id, "ok": True, "op": op, **wire}

    # ------------------------------------------------------------------
    # Routing: breaker level + idempotency-key dedup.
    # ------------------------------------------------------------------
    def _execute_routed(self, op: str,
                        request: "AdaptRequest | DecideRequest",
                        tenant: str, level: int):
        """Run one request at the breaker-chosen execution level."""
        batcher = self._batchers[op]
        if level >= 2:
            METRICS.incr("serve.breaker_shed")
            depth = batcher.depth()
            raise BusyError(
                f"op {op!r} shed by circuit breaker",
                queue_depth=depth,
                retry_after_ms=retry_after_ms(
                    max(depth, 1), batcher.drain.rate_rps()),
            )
        if level == 1:
            # Serial per-request on the handler thread: no batching
            # amortisation, but one poisoned batch partner cannot take
            # this request down with it.
            METRICS.incr("serve.serial_requests")
            return self._executors[op]([request])[0]
        return batcher.submit(request, tenant)

    def _execute_keyed(self, op: str,
                       request: "AdaptRequest | DecideRequest",
                       tenant: str, level: int):
        """Dedup wrapper: one execution per idempotency key.

        The first request claiming a key executes; concurrent
        duplicates (a hedge, or a retry racing a slow original) wait
        and receive the original's payload. A failed execution drops
        the entry so a later retry runs fresh; a successful payload is
        retained (bounded LRU) for retries arriving after the original
        connection died mid-response.
        """
        key = request.key
        if key is None or not isinstance(key, str):
            return self._execute_routed(op, request, tenant, level)
        with self._dedup_lock:
            entry = self._dedup.get(key)
            owner = entry is None
            if owner:
                entry = _DedupEntry()
                self._dedup[key] = entry
            else:
                self._dedup.move_to_end(key)
        if not owner:
            METRICS.incr("serve.dedup_hits")
            # Bounded wait: the original is subject to the batch
            # timeout plus restart slack, so a vanished owner cannot
            # park retries forever.
            entry.event.wait(timeout=max(self.batch_timeout_s * 4,
                                         60.0))
            if entry.payload is not None:
                return entry.payload
            if entry.error is not None:
                raise entry.error
            raise ServeError(
                f"timed out waiting for original execution of "
                f"key {key!r}"
            )
        try:
            payload = self._execute_routed(op, request, tenant, level)
        except BaseException as exc:
            with self._dedup_lock:
                self._dedup.pop(key, None)
            entry.error = exc
            entry.event.set()
            raise
        entry.payload = payload
        entry.event.set()
        with self._dedup_lock:
            while len(self._dedup) > DEDUP_CAPACITY:
                old_key, old = next(iter(self._dedup.items()))
                if not old.event.is_set():
                    break  # never evict an in-flight execution
                del self._dedup[old_key]
        return payload

    def _validate(self, op: str,
                  request: "AdaptRequest | DecideRequest") -> str | None:
        for field in ("min_generation", "pin_generation"):
            value = getattr(request, field)
            if value is not None and (not isinstance(value, int)
                                      or isinstance(value, bool)
                                      or value < 0):
                return (f"{field} must be a non-negative int, "
                        f"got {value!r}")
        if op == "adapt":
            index = request.trace_index
            if (not isinstance(index, int) or isinstance(index, bool)
                    or not 0 <= index < len(self.traces)):
                return (f"trace_index must be an int in "
                        f"[0, {len(self.traces)}), got {index!r}")
            return None
        window = request.window
        if not isinstance(window, list) or not window:
            return "window must be a non-empty list of counter rows"
        width = len(self.cpu.predictor.counter_ids)
        for row in window:
            if not isinstance(row, list) or len(row) != width:
                return (f"each window row must be a list of {width} "
                        f"counter values")
        mode = request.mode
        if mode not in [m.value for m in Mode]:
            return (f"mode must be one of "
                    f"{[m.value for m in Mode]}, got {mode!r}")
        return None

    # ------------------------------------------------------------------
    # Batch executors (run on the batcher threads).
    # ------------------------------------------------------------------
    def _stale(self, item, entry) -> "_StaleGeneration | None":
        """Pin check against the batch's generation snapshot.

        Authoritative (unlike the dispatch-time ``min_generation``
        pre-check): it compares against the exact entry that computed
        — or would have computed — this item's answer.
        """
        pin = item.pin_generation
        if pin is None or pin == entry.generation:
            return None
        return _StaleGeneration(
            requested=pin, current=entry.generation,
            detail=f"request pinned to generation {pin}; batch served "
                   f"by generation {entry.generation}")

    def _execute_adapt(self, items: list) -> list:
        """One ``run_many`` over the batch's traces.

        ``run_many`` on the resident corpus is bit-identical to
        per-trace ``run`` calls, so coalescing concurrent requests
        changes latency only. The simulation tier that served the
        batch (surrogate / mixed / interval) is read off the METRICS
        counter deltas around the call.

        Generation fence: the registry entry is resolved ONCE here and
        used for the whole batch — a promotion landing mid-batch
        cannot change these items' model, so their digests stay
        identical to direct calls on the generation stamped into the
        response.
        """
        entry = self.registry.current()
        indices = [item.trace_index for item in items]
        before_acc = METRICS.count("surrogate.accepted")
        before_fall = METRICS.count("surrogate.fallback")
        results = entry.cpu.run_many(
            [self.traces[i] for i in indices], pmap=self._pmap)
        tier = _tier_from_deltas(
            METRICS.count("surrogate.accepted") - before_acc,
            METRICS.count("surrogate.fallback") - before_fall)
        out = []
        for item, index, result in zip(items, indices, results):
            stale = self._stale(item, entry)
            if stale is not None:
                out.append(stale)
                continue
            if self.ring is not None:
                # Realized outcome sample for the continual loop: the
                # labels come free with the interval-tier run.
                accuracy = float(np.count_nonzero(
                    result.predictions == result.labels)
                    / max(result.predictions.shape[0], 1))
                if self.ring.record_adapt(index, entry.generation,
                                          accuracy,
                                          float(result.ppw_gain),
                                          float(result.residency)):
                    METRICS.incr("online.samples")
            out.append(AdaptResponse(
                result=adapt_payload(result), tier=tier,
                model_generation=entry.generation))
        return out

    def _execute_decide(self, items: list) -> list:
        """One ``predict_proba`` per mode over concatenated windows.

        Inference is row-wise, so stacking the batch's windows per
        mode and slicing the probabilities back out returns exactly
        the bits of one call per request. The same per-batch
        generation snapshot as ``_execute_adapt`` applies.
        """
        entry = self.registry.current()
        predictor = entry.cpu.predictor
        by_mode: dict[Mode, list[int]] = {}
        for i, item in enumerate(items):
            by_mode.setdefault(Mode(item.mode), []).append(i)
        out: list = [None] * len(items)
        for mode, positions in by_mode.items():
            windows = [np.asarray(items[i].window, dtype=np.float64)
                       for i in positions]
            stacked = np.concatenate(windows, axis=0)
            probs = predictor.predict_proba(stacked, mode)
            threshold = predictor.model_for(mode).decision_threshold
            offset = 0
            for i, window in zip(positions, windows):
                rows = window.shape[0]
                payload = decide_payload(probs[offset:offset + rows],
                                         threshold)
                offset += rows
                stale = self._stale(items[i], entry)
                if stale is not None:
                    out[i] = stale
                    continue
                if self.ring is not None:
                    decisions = payload["decisions"]
                    if self.ring.record_decide(
                            entry.generation,
                            float(np.mean(decisions))
                            if decisions else 0.0):
                        METRICS.incr("online.samples")
                out[i] = DecideResponse(
                    mode=mode.value, probs=payload["probs"],
                    decisions=payload["decisions"],
                    digest=payload["digest"],
                    model_generation=entry.generation)
        return out

    # ------------------------------------------------------------------
    def _stats(self) -> dict:
        snapshot = METRICS.snapshot()
        batch_hist = snapshot.get("histograms", {}).get(
            "serve.batch_size", {})
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "requests": self._requests,
            "corpus_traces": len(self.traces),
            "predictor": self.cpu.predictor.name,
            "n_counters": int(len(self.cpu.predictor.counter_ids)),
            "max_batch": self.max_batch,
            "max_wait_us": self.max_wait_us,
            "queue_bound": self.queue_bound,
            "queue_depth": {op: b.depth()
                            for op, b in self._batchers.items()},
            "batches": snapshot.get("counters", {}).get(
                "serve.batches", 0),
            "shed": snapshot.get("counters", {}).get("serve.shed", 0),
            "flush_full": snapshot.get("counters", {}).get(
                "serve.flush_full", 0),
            "flush_wait": snapshot.get("counters", {}).get(
                "serve.flush_wait", 0),
            "batch_size": batch_hist,
            "resident_arena": self.cpu._resident_arena is not None,
            "tenants": self.ledger.snapshot(),
        }

    def _health(self) -> dict:
        """Liveness/degradation surface for probes and operators."""
        checkpoint = None
        if self.checkpoint_info is not None:
            checkpoint = dict(self.checkpoint_info)
            created = checkpoint.pop("created", None)
            if created is not None:
                checkpoint["age_s"] = round(
                    max(time.time() - created, 0.0), 3)
        with self._dedup_lock:
            dedup_entries = len(self._dedup)
        online = None
        if self.online_enabled:
            online = {
                "ring": self.ring.snapshot(),
                "drift": self.detector.snapshot(),
                "learner": self.learner.snapshot(),
                "registry": self.registry.snapshot(),
            }
        return HealthStatus(
            ready=not self._stop.is_set(),
            uptime_s=round(time.monotonic() - self._started, 3),
            init_s=round(self.init_s, 6),
            requests=self._requests,
            queue_depth={op: b.depth()
                         for op, b in self._batchers.items()},
            drain_rps={op: round(b.drain.rate_rps(), 3)
                       for op, b in self._batchers.items()},
            breakers={op: breaker.snapshot()
                      for op, breaker in self.breakers.items()},
            watchdog=self.supervisor.snapshot(),
            batch_timeout_s=self.batch_timeout_s,
            checkpoint=checkpoint,
            dedup_entries=dedup_entries,
            model_generation=self.registry.generation,
            online=online,
        ).to_wire()


def build_server(address: str | tuple[str, int],
                 predictor_kind: str = "forest",
                 n_apps: int = 8, workloads_per_app: int = 2,
                 intervals: int = 96, seed: int = 11,
                 checkpoint_path: str | None = None,
                 **kwargs) -> AdaptationServer:
    """Assemble the standard daemon: corpus, predictor, server.

    ``predictor_kind`` is ``"forest"`` (quick-trained dual random
    forest, the realistic default) or ``"const"`` (fixed-probability
    stub, instant startup for protocol-level tests).

    With ``checkpoint_path`` (default: the active config's
    ``REPRO_SERVE_CHECKPOINT``), warm state is restored from a valid
    checkpoint whose fingerprint matches the requested corpus —
    skipping corpus synthesis and predictor training — and written
    after any cold build so the *next* start is warm. A rejected
    checkpoint (missing, corrupt, fingerprint mismatch) costs nothing
    but the cold build it would have avoided.
    """
    config = active_exec_config()
    if checkpoint_path is None:
        checkpoint_path = config.serve_checkpoint
    fingerprint = corpus_fingerprint(predictor_kind, n_apps,
                                     workloads_per_app, intervals, seed)
    init_start = time.perf_counter()
    checkpoint_info: dict | None = None
    cpu: AdaptiveCPU | None = None
    traces: list[TraceSpec] | None = None
    generation = 0
    if checkpoint_path:
        try:
            state = load_checkpoint(checkpoint_path, fingerprint)
        except CheckpointError as exc:
            METRICS.incr("serve.checkpoint_rejected")
            checkpoint_info = {"path": checkpoint_path,
                               "loaded": False,
                               "rejected": str(exc)}
        else:
            METRICS.incr("serve.checkpoint_loads")
            cpu = state["cpu"]
            traces = state["traces"]
            # A restart resumes at the promoted generation: online
            # promotions rewrite the checkpoint, so the warm model IS
            # generation N and clients' min_generation bounds hold
            # across supervised crash/restart cycles.
            generation = state["generation"]
            checkpoint_info = {"path": checkpoint_path, "loaded": True,
                               "created": state["created"],
                               "generation": generation}
    if cpu is None or traces is None:
        traces = serving_corpus(n_apps, workloads_per_app, intervals,
                                seed)
        if predictor_kind == "forest":
            predictor = quick_forest_predictor(traces)
        elif predictor_kind == "const":
            predictor = const_predictor()
        else:
            raise ServeError(
                f"unknown predictor kind {predictor_kind!r}; expected "
                f"'forest' or 'const'"
            )
        cpu = AdaptiveCPU(predictor)
        if checkpoint_path:
            try:
                saved = save_checkpoint(checkpoint_path, cpu, traces,
                                        fingerprint)
            except CheckpointError:
                METRICS.incr("serve.checkpoint_save_failed")
            else:
                METRICS.incr("serve.checkpoint_saves")
                rejected = (checkpoint_info or {}).get("rejected")
                checkpoint_info = {"path": checkpoint_path,
                                   "loaded": False,
                                   "created": time.time(),
                                   "bytes": saved["bytes"]}
                if rejected:
                    checkpoint_info["rejected"] = rejected
    init_s = time.perf_counter() - init_start
    return AdaptationServer(cpu, traces, address, init_s=init_s,
                            checkpoint_info=checkpoint_info,
                            generation=generation,
                            checkpoint_path=checkpoint_path or None,
                            fingerprint=fingerprint, **kwargs)


#: Ops the batcher coalesces — re-exported for introspection parity.
__all__ = ["AdaptationServer", "ConstProbModel", "BATCHED_OPS",
           "DAEMON_CRASH_EXIT", "build_server", "const_predictor",
           "quick_forest_predictor", "serving_corpus"]
