"""Blocking client for the adaptation-serving daemon.

One :class:`ServeClient` wraps one connection; requests are
synchronous (send one frame, read one frame). Concurrency — the thing
that exercises the daemon's micro-batcher — comes from many clients,
one per thread, as in ``benchmarks/bench_serve.py``.

Resilience (all off by default; a zero-``retries`` client behaves
exactly like the original single-attempt client):

* **Retries** — up to ``retries`` extra attempts with capped
  exponential backoff and deterministic (seeded) jitter. A ``busy``
  shed honors the server's ``retry_after_ms`` hint instead of the
  blind backoff schedule.
* **Reconnect + idempotency** — transport failures (dropped
  connection, corrupted response frame) reconnect and resend under a
  client-unique idempotency ``key``; the daemon deduplicates, so a
  request whose original execution survived its dropped response
  returns the *original* payload rather than running twice. Without a
  key (``retries=0`` and no hedging) transport errors propagate, as
  before.
* **Hedging** — with ``hedge_s`` set, an attempt whose response has
  not arrived within the hedge delay opens a second connection and
  resends the same keyed request; whichever execution wins, dedup
  guarantees one payload.
* **fd hygiene** — the socket is closed on *every* error path and the
  client reconnects lazily, so a long-lived caller cycling through
  errors never leaks descriptors. Context-manager use
  (``with ServeClient(...) as c:``) closes on exit.
"""

from __future__ import annotations

import itertools
import os
import random
import socket
import time

import numpy as np

from repro.errors import (BatchTimeoutError, BusyError, ProtocolError,
                          RetriesExhaustedError, ServeError,
                          StaleGenerationError)
from repro.serve.api import (AdaptRequest, DecideRequest, HealthStatus)
from repro.serve.protocol import recv_frame, send_frame

#: First-retry backoff and its cap (seconds); attempt ``k`` waits
#: ``min(cap, base * 2**k)`` scaled by jitter in [0.5, 1.0].
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0

#: Process-wide counter making idempotency keys unique across clients.
_CLIENT_IDS = itertools.count()


class ServeClient:
    """One connection to an :class:`~repro.serve.server.AdaptationServer`.

    ``address`` mirrors the server's: a filesystem path (AF_UNIX) or a
    ``(host, port)`` tuple (AF_INET). ``retries``/``hedge_s`` opt into
    the resilience behaviors documented in the module docstring;
    ``seed`` fixes the backoff jitter stream (default: derived from
    the client's identity, still deterministic per process).

    Generation constraints (continual adaptation, schema 2):
    ``min_generation`` stamps every inference request with "serve me
    only from model generation >= N" — use it after learning of a
    promotion to guarantee the retrained model answers.
    ``pin_generation`` demands *exactly* generation N — bit-level
    reproducibility across a promotion window. A daemon that cannot
    satisfy the constraint answers ``stale_generation``, surfaced as
    :class:`~repro.errors.StaleGenerationError`.
    """

    def __init__(self, address: str | tuple[str, int],
                 tenant: str = "default",
                 timeout_s: float | None = 30.0,
                 retries: int = 0,
                 hedge_s: float | None = None,
                 seed: int | None = None,
                 min_generation: int | None = None,
                 pin_generation: int | None = None) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if hedge_s is not None and hedge_s <= 0:
            raise ValueError(f"hedge_s must be > 0, got {hedge_s}")
        for name, value in (("min_generation", min_generation),
                            ("pin_generation", pin_generation)):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        self.address = address
        self.tenant = tenant
        self.min_generation = min_generation
        self.pin_generation = pin_generation
        self.timeout_s = timeout_s
        self.retries = retries
        self.hedge_s = hedge_s
        self._client_id = next(_CLIENT_IDS)
        self._rng = random.Random(
            seed if seed is not None
            else (os.getpid() << 16) ^ self._client_id)
        self._sock: socket.socket | None = None
        self._next_id = 0
        self._connect()

    # ------------------------------------------------------------------
    # Connection lifecycle.
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if isinstance(self.address, tuple):
            sock = socket.create_connection(tuple(self.address),
                                            timeout=self.timeout_s)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            try:
                sock.connect(self.address)
            except BaseException:
                sock.close()
                raise
        self._sock = sock
        return sock

    def _ensure_sock(self) -> socket.socket:
        if self._sock is None:
            return self._connect()
        return self._sock

    def _drop_sock(self) -> None:
        """Close the connection (error path); the next attempt
        reconnects. Closing here is what keeps error loops from
        leaking file descriptors."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        self._drop_sock()

    # ------------------------------------------------------------------
    # Request path.
    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one request and return the raw response dict.

        With ``retries == 0`` and no hedging: one attempt, and a
        ``busy`` shed raises :class:`BusyError` (carrying the server's
        ``retry_after_ms`` hint), any other error response raises
        :class:`ServeError` — the caller decides what to do.

        With resilience enabled, transport errors and ``busy`` sheds
        are retried under an idempotency key until the budget runs
        out, then :class:`RetriesExhaustedError` (carrying the final
        attempt's error) surfaces.
        """
        resilient = self.retries > 0 or self.hedge_s is not None
        key = None
        if resilient and "key" not in payload:
            self._next_id += 1
            key = f"c{os.getpid()}-{self._client_id}-{self._next_id}"
        elif "key" in payload:
            key = payload["key"]
        last: BaseException | None = None
        for attempt in range(self.retries + 1):
            try:
                return self._attempt(payload, key)
            except BusyError as exc:
                last = exc
                if attempt >= self.retries:
                    if self.retries == 0:
                        raise
                    break
                self._sleep(attempt, retry_after_ms=exc.retry_after_ms)
            except BatchTimeoutError as exc:
                # The watchdog abandoned the batch before anything was
                # committed — retrying is always safe.
                last = exc
                if attempt >= self.retries:
                    if self.retries == 0:
                        raise
                    break
                self._sleep(attempt)
            except (ProtocolError, OSError) as exc:
                last = exc
                self._drop_sock()
                # Without a dedup key a resend could execute twice —
                # never retry transport errors un-keyed.
                if key is None or attempt >= self.retries:
                    if self.retries == 0 or key is None:
                        raise
                    break
                self._sleep(attempt)
        raise RetriesExhaustedError(
            f"request failed after {self.retries + 1} attempt(s): "
            f"{type(last).__name__}: {last}",
            last_error=last,
        )

    def _attempt(self, payload: dict, key: str | None) -> dict:
        self._next_id += 1
        wire = {"id": self._next_id, "tenant": self.tenant, **payload}
        if key is not None:
            wire["key"] = key
        sock = self._ensure_sock()
        try:
            send_frame(sock, wire)
            if self.hedge_s is not None and key is not None:
                response = self._recv_hedged(sock, wire)
            else:
                response = recv_frame(sock)
        except (ProtocolError, OSError):
            self._drop_sock()
            raise
        if response is None:
            self._drop_sock()
            raise ProtocolError("server closed the connection")
        return self._check(response)

    def _recv_hedged(self, sock: socket.socket, wire: dict) -> dict | None:
        """Wait ``hedge_s`` on the primary; on silence, race a second
        keyed attempt on a fresh connection (server dedup makes the
        duplicate safe — both connections observe one execution)."""
        sock.settimeout(self.hedge_s)
        try:
            return recv_frame(sock)
        except TimeoutError:
            # The primary may be stalled mid-frame; its connection is
            # now desynchronized and must die with the hedge's win.
            self._drop_sock()
            hedged = self._connect()
            send_frame(hedged, wire)
            return recv_frame(hedged)
        finally:
            if self._sock is sock:
                sock.settimeout(self.timeout_s)

    def _check(self, response: dict) -> dict:
        if response.get("ok"):
            return response
        error = response.get("error")
        if error == "busy":
            raise BusyError(
                f"server busy (queue "
                f"{response.get('queue_depth')}/"
                f"{response.get('queue_bound')})",
                queue_depth=int(response.get("queue_depth", 0)),
                retry_after_ms=response.get("retry_after_ms"),
            )
        if error == "timeout":
            raise BatchTimeoutError(str(response.get("detail", error)))
        if error == "stale_generation":
            raise StaleGenerationError(
                str(response.get("detail", error)),
                requested=response.get("requested"),
                current=response.get("current"),
            )
        raise ServeError(
            f"server error {error!r}: {response.get('detail', '')}"
        )

    def _sleep(self, attempt: int,
               retry_after_ms: float | None = None) -> None:
        """Backoff before retry ``attempt + 1``.

        Busy sheds wait the server's computed hint; everything else
        follows capped exponential backoff. Both are scaled by
        deterministic jitter in [0.5, 1.0] so a fleet of clients
        created with distinct seeds desynchronizes instead of
        retrying in lockstep."""
        if retry_after_ms is not None:
            base = retry_after_ms / 1e3
        else:
            base = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** attempt))
        time.sleep(base * (0.5 + 0.5 * self._rng.random()))

    # ------------------------------------------------------------------
    # Typed ops.
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def health(self) -> dict:
        """Queue depths, breaker states, watchdog and checkpoint age."""
        return self.request({"op": "health"})["health"]

    def health_status(self) -> HealthStatus:
        """Typed :class:`~repro.serve.api.HealthStatus` view of
        :meth:`health` — carries ``model_generation`` and the
        continual-adaptation surface when the daemon runs online."""
        return HealthStatus.from_wire(self.health())

    def adapt(self, trace_index: int,
              budget_ms: float | None = None) -> dict:
        """Run the closed adaptation loop on one corpus trace.

        The response payload carries ``model_generation`` — the
        registry generation whose model produced it.
        """
        request = AdaptRequest(
            trace_index=int(trace_index), tenant=self.tenant,
            budget_ms=None if budget_ms is None else float(budget_ms),
            min_generation=self.min_generation,
            pin_generation=self.pin_generation)
        return self.request(request.to_wire())

    def decide(self, mode: str, window,
               budget_ms: float | None = None) -> dict:
        """Gating decisions for one telemetry window in ``mode``."""
        rows = np.asarray(window, dtype=np.float64)
        request = DecideRequest(
            mode=mode,
            window=[[float(v) for v in row] for row in rows],
            tenant=self.tenant,
            budget_ms=None if budget_ms is None else float(budget_ms),
            min_generation=self.min_generation,
            pin_generation=self.pin_generation)
        return self.request(request.to_wire())

    def shutdown(self) -> dict:
        """Ask the daemon to shut down cleanly."""
        return self.request({"op": "shutdown"})


def wait_until_ready(address: str | tuple[str, int],
                     timeout_s: float = 60.0,
                     poll_s: float = 0.05) -> None:
    """Block until a daemon at ``address`` answers a ping."""
    deadline = time.monotonic() + timeout_s
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(address, timeout_s=2.0) as client:
                if client.ping():
                    return
        except (OSError, ProtocolError, ServeError) as exc:
            last = exc
        time.sleep(poll_s)
    raise ServeError(
        f"no daemon became ready at {address!r} within {timeout_s}s: "
        f"{last}"
    )
