"""Blocking client for the adaptation-serving daemon.

One :class:`ServeClient` wraps one connection; requests are
synchronous (send one frame, read one frame). Concurrency — the thing
that exercises the daemon's micro-batcher — comes from many clients,
one per thread, as in ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import socket
import time

import numpy as np

from repro.errors import BusyError, ProtocolError, ServeError
from repro.serve.protocol import recv_frame, send_frame


class ServeClient:
    """One connection to an :class:`~repro.serve.server.AdaptationServer`.

    ``address`` mirrors the server's: a filesystem path (AF_UNIX) or a
    ``(host, port)`` tuple (AF_INET).
    """

    def __init__(self, address: str | tuple[str, int],
                 tenant: str = "default",
                 timeout_s: float | None = 30.0) -> None:
        self.address = address
        self.tenant = tenant
        if isinstance(address, tuple):
            self._sock = socket.create_connection(
                tuple(address), timeout=timeout_s)
        else:
            self._sock = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(address)
        self._next_id = 0

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one request frame and return the raw response dict.

        Raises :class:`BusyError` on an admission shed (the typed
        ``busy`` response — the caller decides whether to retry) and
        :class:`ServeError` on any other error response.
        """
        self._next_id += 1
        payload = {"id": self._next_id, "tenant": self.tenant, **payload}
        send_frame(self._sock, payload)
        response = recv_frame(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        if response.get("ok"):
            return response
        error = response.get("error")
        if error == "busy":
            raise BusyError(
                f"server busy (queue "
                f"{response.get('queue_depth')}/"
                f"{response.get('queue_bound')})",
                queue_depth=int(response.get("queue_depth", 0)),
            )
        raise ServeError(
            f"server error {error!r}: {response.get('detail', '')}"
        )

    # ------------------------------------------------------------------
    # Typed ops.
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def adapt(self, trace_index: int,
              budget_ms: float | None = None) -> dict:
        """Run the closed adaptation loop on one corpus trace."""
        payload: dict = {"op": "adapt", "trace_index": int(trace_index)}
        if budget_ms is not None:
            payload["budget_ms"] = float(budget_ms)
        return self.request(payload)

    def decide(self, mode: str, window,
               budget_ms: float | None = None) -> dict:
        """Gating decisions for one telemetry window in ``mode``."""
        rows = np.asarray(window, dtype=np.float64)
        payload: dict = {
            "op": "decide", "mode": mode,
            "window": [[float(v) for v in row] for row in rows],
        }
        if budget_ms is not None:
            payload["budget_ms"] = float(budget_ms)
        return self.request(payload)

    def shutdown(self) -> dict:
        """Ask the daemon to shut down cleanly."""
        return self.request({"op": "shutdown"})


def wait_until_ready(address: str | tuple[str, int],
                     timeout_s: float = 60.0,
                     poll_s: float = 0.05) -> None:
    """Block until a daemon at ``address`` answers a ping."""
    deadline = time.monotonic() + timeout_s
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(address, timeout_s=2.0) as client:
                if client.ping():
                    return
        except (OSError, ProtocolError, ServeError) as exc:
            last = exc
        time.sleep(poll_s)
    raise ServeError(
        f"no daemon became ready at {address!r} within {timeout_s}s: "
        f"{last}"
    )
