"""Adaptive request micro-batcher.

The daemon's hot-path perf lever: concurrent requests arriving within
a short window are coalesced into one batch and executed together, so
the expensive per-call costs (one ``predict_proba`` per model, one
stacked ``simulate_batch``, one pass of batcher/scheduler overhead)
amortise across requests instead of being paid per request.

Flush policy — whichever comes first:

* the pending queue reaches ``max_batch`` (counter
  ``serve.flush_full``), or
* ``max_wait_us`` has elapsed since the *oldest* pending request was
  enqueued (``serve.flush_wait``).

``max_wait_us=0`` degenerates to batch-as-available: the batcher takes
whatever is queued the moment it becomes free, which under concurrency
still forms multi-request batches without adding idle latency.

Admission control: :meth:`MicroBatcher.submit` sheds with a typed
:class:`~repro.errors.BusyError` when the queue is at ``queue_bound``
— callers translate it into the ``busy`` wire response instead of
letting the backlog (and every queued request's latency) grow without
bound. The error carries a ``retry_after_ms`` hint computed from the
queue depth and the batcher's recent drain rate
(:class:`~repro.serve.admission.DrainTracker`).

Priority: when a :class:`~repro.serve.admission.TenantLedger` is
attached, each flush drains pending requests in descending tenant SLA
pressure (ties broken FIFO), so tenants nearest their latency budget
are served first.

Hang recovery: Python threads cannot be killed, so a hung executor is
handled by *abandonment*. The batcher tracks its in-flight batch and a
generation counter; the supervisor's watchdog calls
:meth:`MicroBatcher.abandon_inflight` when :meth:`inflight_age`
exceeds the batch timeout. Abandonment fails only the in-flight
requests with a typed :class:`~repro.errors.BatchTimeoutError`, bumps
the generation, and starts a replacement consumer thread — queued
requests are untouched and drain normally. If the stale thread ever
wakes, it observes the generation mismatch, discards its work without
touching any request, and exits.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

from repro.errors import BusyError, ServeClosedError
from repro.exec import faults
from repro.obs.metrics import METRICS
from repro.serve.admission import (DrainTracker, TenantLedger,
                                   retry_after_ms)


class _Pending:
    """One enqueued request waiting for its batch to execute."""

    __slots__ = ("item", "tenant", "seq", "enqueued", "event",
                 "response", "error")

    def __init__(self, item: object, tenant: str, seq: int) -> None:
        self.item = item
        self.tenant = tenant
        self.seq = seq
        self.enqueued = time.monotonic()
        self.event = threading.Event()
        self.response: object = None
        self.error: BaseException | None = None


class MicroBatcher:
    """Coalesce concurrent submissions into bounded ordered batches.

    ``execute`` receives a list of submitted items and must return one
    result per item, in order — the contract under which batching is
    invisible to correctness (the server's executors are row-wise /
    per-trace, so any grouping returns identical bits).
    """

    def __init__(self, execute: Callable[[Sequence], list],
                 max_batch: int, max_wait_us: int, queue_bound: int,
                 ledger: TenantLedger | None = None,
                 name: str = "batcher") -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {max_wait_us}"
            )
        if queue_bound < 1:
            raise ValueError(
                f"queue_bound must be >= 1, got {queue_bound}"
            )
        self._execute = execute
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self.queue_bound = queue_bound
        self.ledger = ledger
        self.name = name
        self.drain = DrainTracker()
        self._cv = threading.Condition()
        self._queue: list[_Pending] = []
        self._seq = 0
        self._closed = False
        self._generation = 0
        self._inflight: list[_Pending] = []
        self._inflight_since: float | None = None
        self._restarts = 0
        self._thread = self._spawn(self._generation)

    def _spawn(self, generation: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._loop, args=(generation,),
            name=f"repro-serve-batcher-{self.name}-g{generation}",
            daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------------
    # Producer side (connection handler threads).
    # ------------------------------------------------------------------
    def submit(self, item: object, tenant: str = "default") -> object:
        """Enqueue one item and block until its batch has executed.

        Raises :class:`BusyError` (admission shed) when the queue is
        full and :class:`ServeClosedError` once the batcher is closed.
        Re-raises the executor's exception if the batch failed.
        """
        with self._cv:
            if self._closed:
                raise ServeClosedError("batcher is closed")
            depth = len(self._queue)
            if depth >= self.queue_bound:
                METRICS.incr("serve.shed")
                raise BusyError(
                    f"serve queue full ({depth}/{self.queue_bound})",
                    queue_depth=depth,
                    retry_after_ms=retry_after_ms(
                        depth, self.drain.rate_rps()),
                )
            self._seq += 1
            pending = _Pending(item, tenant, self._seq)
            self._queue.append(pending)
            self._cv.notify_all()
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.response

    def depth(self) -> int:
        """Current queue depth (requests admitted, not yet batched)."""
        with self._cv:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Watchdog interface (the supervisor thread).
    # ------------------------------------------------------------------
    def inflight_age(self) -> float | None:
        """Seconds the current in-flight batch has been executing.

        ``None`` when nothing is in flight — the watchdog's signal
        that this batcher is healthy (or merely idle).
        """
        with self._cv:
            if self._inflight_since is None:
                return None
            return time.monotonic() - self._inflight_since

    @property
    def restarts(self) -> int:
        """How many times the consumer thread has been abandoned."""
        with self._cv:
            return self._restarts

    def abandon_inflight(self, error: BaseException) -> int:
        """Fail the in-flight batch and restart the consumer thread.

        Delivers ``error`` to every in-flight request (queued requests
        are untouched), bumps the generation so the stale thread
        discards whatever it eventually produces, and spawns a fresh
        consumer. Returns the number of requests failed (0 when
        nothing was in flight — a race with normal completion, which
        is benign).
        """
        with self._cv:
            batch = self._inflight
            if not batch:
                return 0
            self._inflight = []
            self._inflight_since = None
            self._generation += 1
            self._restarts += 1
            if not self._closed:
                self._thread = self._spawn(self._generation)
            self._cv.notify_all()
        for pending in batch:
            pending.error = error
            pending.event.set()
        METRICS.incr("serve.batcher_restarts")
        return len(batch)

    # ------------------------------------------------------------------
    # Consumer side (the single *current-generation* batcher thread).
    # ------------------------------------------------------------------
    def _take_batch(self, generation: int) -> list[_Pending] | None:
        """Block until a flush condition holds; None on drained close
        or when this thread's generation has been superseded."""
        with self._cv:
            while not self._queue:
                if self._closed or self._generation != generation:
                    return None
                self._cv.wait()
            if self._generation != generation:
                return None
            deadline = self._queue[0].enqueued + self.max_wait_us / 1e6
            while (len(self._queue) < self.max_batch
                    and not self._closed
                    and self._generation == generation):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(timeout=remaining)
            if self._generation != generation:
                return None
            if len(self._queue) >= self.max_batch:
                METRICS.incr("serve.flush_full")
            else:
                METRICS.incr("serve.flush_wait")
            if self.ledger is not None and len(self._queue) > 1:
                pressures = {
                    tenant: self.ledger.pressure(tenant)
                    for tenant in {p.tenant for p in self._queue}
                }
                self._queue.sort(
                    key=lambda p: (-pressures[p.tenant], p.seq))
            batch = self._queue[:self.max_batch]
            del self._queue[:self.max_batch]
            self._inflight = batch
            self._inflight_since = time.monotonic()
            return batch

    def _finish_batch(self, generation: int) -> bool:
        """Clear in-flight state; False when this thread is stale."""
        with self._cv:
            if self._generation != generation:
                METRICS.incr("serve.stale_batches_discarded")
                return False
            self._inflight = []
            self._inflight_since = None
            return True

    def _loop(self, generation: int) -> None:
        while True:
            batch = self._take_batch(generation)
            if batch is None:
                return
            METRICS.observe("serve.batch_size", len(batch))
            METRICS.incr("serve.batches")
            plan = faults.active_plan()
            if plan is not None and faults.should_inject(
                    "batch_hang", f"serve.batch/{self.name}"):
                # The executor "hangs": if hang_s exceeds the batch
                # timeout, the supervisor abandons this generation
                # while we sleep.
                time.sleep(plan.hang_s)
                with self._cv:
                    if self._generation != generation:
                        METRICS.incr("serve.stale_batches_discarded")
                        return
            start = time.perf_counter()
            try:
                results = self._execute([p.item for p in batch])
                if len(results) != len(batch):
                    raise ServeClosedError(
                        f"executor returned {len(results)} results for "
                        f"{len(batch)} items"
                    )
            except BaseException as exc:  # delivered, not swallowed
                if not self._finish_batch(generation):
                    return
                for pending in batch:
                    pending.error = exc
                    pending.event.set()
                continue
            if not self._finish_batch(generation):
                return
            METRICS.add_time("serve.execute",
                             time.perf_counter() - start)
            done = time.monotonic()
            self.drain.record(len(batch), now=done)
            for pending, result in zip(batch, results):
                pending.response = result
                latency = done - pending.enqueued
                METRICS.observe("serve.queue_latency_s", latency)
                if self.ledger is not None:
                    if isinstance(pending.item, dict):
                        budget_ms = pending.item.get("budget_ms")
                    else:  # typed request dataclasses (serve.api)
                        budget_ms = getattr(pending.item, "budget_ms",
                                            None)
                    self.ledger.record(pending.tenant, latency,
                                       budget_ms)
                pending.event.set()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work, drain the queue, join the thread."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        self._thread.join(timeout=30.0)
