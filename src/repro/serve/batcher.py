"""Adaptive request micro-batcher.

The daemon's hot-path perf lever: concurrent requests arriving within
a short window are coalesced into one batch and executed together, so
the expensive per-call costs (one ``predict_proba`` per model, one
stacked ``simulate_batch``, one pass of batcher/scheduler overhead)
amortise across requests instead of being paid per request.

Flush policy — whichever comes first:

* the pending queue reaches ``max_batch`` (counter
  ``serve.flush_full``), or
* ``max_wait_us`` has elapsed since the *oldest* pending request was
  enqueued (``serve.flush_wait``).

``max_wait_us=0`` degenerates to batch-as-available: the batcher takes
whatever is queued the moment it becomes free, which under concurrency
still forms multi-request batches without adding idle latency.

Admission control: :meth:`MicroBatcher.submit` sheds with a typed
:class:`~repro.errors.BusyError` when the queue is at ``queue_bound``
— callers translate it into the ``busy`` wire response instead of
letting the backlog (and every queued request's latency) grow without
bound.

Priority: when a :class:`~repro.serve.admission.TenantLedger` is
attached, each flush drains pending requests in descending tenant SLA
pressure (ties broken FIFO), so tenants nearest their latency budget
are served first.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

from repro.errors import BusyError, ServeClosedError
from repro.obs.metrics import METRICS
from repro.serve.admission import TenantLedger


class _Pending:
    """One enqueued request waiting for its batch to execute."""

    __slots__ = ("item", "tenant", "seq", "enqueued", "event",
                 "response", "error")

    def __init__(self, item: object, tenant: str, seq: int) -> None:
        self.item = item
        self.tenant = tenant
        self.seq = seq
        self.enqueued = time.monotonic()
        self.event = threading.Event()
        self.response: object = None
        self.error: BaseException | None = None


class MicroBatcher:
    """Coalesce concurrent submissions into bounded ordered batches.

    ``execute`` receives a list of submitted items and must return one
    result per item, in order — the contract under which batching is
    invisible to correctness (the server's executors are row-wise /
    per-trace, so any grouping returns identical bits).
    """

    def __init__(self, execute: Callable[[Sequence], list],
                 max_batch: int, max_wait_us: int, queue_bound: int,
                 ledger: TenantLedger | None = None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {max_wait_us}"
            )
        if queue_bound < 1:
            raise ValueError(
                f"queue_bound must be >= 1, got {queue_bound}"
            )
        self._execute = execute
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self.queue_bound = queue_bound
        self.ledger = ledger
        self._cv = threading.Condition()
        self._queue: list[_Pending] = []
        self._seq = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (connection handler threads).
    # ------------------------------------------------------------------
    def submit(self, item: object, tenant: str = "default") -> object:
        """Enqueue one item and block until its batch has executed.

        Raises :class:`BusyError` (admission shed) when the queue is
        full and :class:`ServeClosedError` once the batcher is closed.
        Re-raises the executor's exception if the batch failed.
        """
        with self._cv:
            if self._closed:
                raise ServeClosedError("batcher is closed")
            depth = len(self._queue)
            if depth >= self.queue_bound:
                METRICS.incr("serve.shed")
                raise BusyError(
                    f"serve queue full ({depth}/{self.queue_bound})",
                    queue_depth=depth,
                )
            self._seq += 1
            pending = _Pending(item, tenant, self._seq)
            self._queue.append(pending)
            self._cv.notify_all()
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.response

    def depth(self) -> int:
        """Current queue depth (requests admitted, not yet batched)."""
        with self._cv:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Consumer side (the single batcher thread).
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Pending] | None:
        """Block until a flush condition holds; None on drained close."""
        with self._cv:
            while not self._queue:
                if self._closed:
                    return None
                self._cv.wait()
            deadline = self._queue[0].enqueued + self.max_wait_us / 1e6
            while (len(self._queue) < self.max_batch
                    and not self._closed):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(timeout=remaining)
            if len(self._queue) >= self.max_batch:
                METRICS.incr("serve.flush_full")
            else:
                METRICS.incr("serve.flush_wait")
            if self.ledger is not None and len(self._queue) > 1:
                pressures = {
                    tenant: self.ledger.pressure(tenant)
                    for tenant in {p.tenant for p in self._queue}
                }
                self._queue.sort(
                    key=lambda p: (-pressures[p.tenant], p.seq))
            batch = self._queue[:self.max_batch]
            del self._queue[:self.max_batch]
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            METRICS.observe("serve.batch_size", len(batch))
            METRICS.incr("serve.batches")
            start = time.perf_counter()
            try:
                results = self._execute([p.item for p in batch])
                if len(results) != len(batch):
                    raise ServeClosedError(
                        f"executor returned {len(results)} results for "
                        f"{len(batch)} items"
                    )
            except BaseException as exc:  # delivered, not swallowed
                for pending in batch:
                    pending.error = exc
                    pending.event.set()
                continue
            METRICS.add_time("serve.execute",
                             time.perf_counter() - start)
            done = time.monotonic()
            for pending, result in zip(batch, results):
                pending.response = result
                latency = done - pending.enqueued
                METRICS.observe("serve.queue_latency_s", latency)
                if self.ledger is not None:
                    budget_ms = None
                    if isinstance(pending.item, dict):
                        budget_ms = pending.item.get("budget_ms")
                    self.ledger.record(pending.tenant, latency,
                                       budget_ms)
                pending.event.set()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work, drain the queue, join the thread."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        self._thread.join(timeout=30.0)
