"""Wire protocol for the adaptation-serving daemon.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON. JSON keeps the protocol
stdlib-only and debuggable (``socat`` + a hex length works); the
length prefix makes framing explicit so a reader never has to guess
where one message ends. Python's ``json`` emits shortest-round-trip
``repr`` floats, so every float survives the wire bit-exactly — the
foundation of the daemon's bit-identity guarantee against direct
in-process :class:`~repro.core.adaptive_cpu.AdaptiveCPU` calls.

Request shapes (all dicts)::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "health"}
    {"op": "shutdown"}
    {"op": "adapt",  "trace_index": 3, "tenant": "t0", "key": "c1-7"}
    {"op": "decide", "mode": "low_power", "window": [[...], ...],
     "tenant": "t1"}

``key`` is an optional client-chosen idempotency key for batched ops:
the daemon deduplicates — a retried or hedged request whose original
already executed (or is executing) returns the original's payload
instead of running twice.

Responses carry ``{"ok": true, ...}`` or a typed error
``{"ok": false, "error": "<kind>", ...}`` — ``busy`` is the admission
-control shed response and includes ``queue_depth`` plus a computed
``retry_after_ms`` hint.

Fault injection: :func:`send_frame` accepts an optional ``fault_key``
naming the send site. When a :class:`~repro.exec.faults.FaultPlan` is
active, the serve-site kinds fire there — ``conn_drop`` (abrupt
close, no response), ``corrupt_frame`` (first body byte overwritten
with an invalid UTF-8 byte, so the peer's decode deterministically
fails), ``slow_peer`` (partial frame, stall, rest). Calls without a
``fault_key`` (clients, tests) are never injected.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import time

import numpy as np

from repro.errors import ProtocolError
from repro.exec import faults

#: Known request operations, in dispatch order.
OPS = ("ping", "stats", "health", "adapt", "decide", "shutdown")

#: Operations the micro-batcher coalesces (the inference hot path);
#: the rest are answered inline by the connection handler.
BATCHED_OPS = ("adapt", "decide")

#: Hard bound on one frame's payload. Large enough for a full mode
#: schedule response or a multi-thousand-row telemetry window, small
#: enough that a corrupt length prefix cannot make the reader attempt
#: a gigabyte allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(obj: dict) -> bytes:
    """One wire frame for ``obj``: length prefix + compact JSON."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _LEN.pack(len(body)) + body


def send_frame(sock: socket.socket, obj: dict,
               fault_key: str | None = None) -> None:
    """Write one frame to a connected socket.

    ``fault_key`` names this send as an injectable fault site (the
    daemon passes ``serve.send/<op>``); ``None`` sends cleanly always.
    """
    frame = encode_frame(obj)
    plan = faults.active_plan() if fault_key is not None else None
    if plan is not None:
        if faults.should_inject("conn_drop", f"{fault_key}/conn_drop"):
            # The peer sees EOF mid-exchange, exactly like a daemon
            # losing the connection after executing the request.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
            raise OSError(f"injected conn_drop at {fault_key}")
        if faults.should_inject("corrupt_frame",
                                f"{fault_key}/corrupt_frame"):
            # 0xFF is invalid UTF-8, so the peer's decode always fails
            # with a typed ProtocolError — never a silently-valid
            # mutated JSON document.
            frame = frame[:_LEN.size] + b"\xff" + frame[_LEN.size + 1:]
            sock.sendall(frame)
            return
        if faults.should_inject("slow_peer", f"{fault_key}/slow_peer"):
            # Stall with a partial frame on the wire: the peer's
            # reader must reassemble split frames (and a hedging
            # client may beat the stall on a second connection).
            sock.sendall(frame[:3])
            time.sleep(plan.hang_s)
            sock.sendall(frame[3:])
            return
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame start."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} "
                f"bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` when the peer closed cleanly."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ---------------------------------------------------------------------
# Payload builders. The server and the bit-identity checks share these,
# so "daemon response == direct AdaptiveCPU call" is a comparison of
# two dicts produced by the same projection — any numeric divergence
# between the batched daemon path and the direct path shows up.
# ---------------------------------------------------------------------
def _digest(*arrays: np.ndarray) -> str:
    """SHA-256 over the raw bytes of the given arrays, in order."""
    h = hashlib.sha256()
    for arr in arrays:
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def adapt_payload(result) -> dict:
    """JSON-safe projection of one ``AdaptiveRunResult``.

    Scalars ride as exact round-trip floats, the mode schedule as an
    int list (the decision the firmware would apply), and every dense
    array folds into one SHA-256 digest — so two payloads are equal
    iff the runs were bit-identical, without shipping megabytes.
    """
    return {
        "trace": result.trace_name,
        "app": result.app_name,
        "predictor": result.predictor_name,
        "granularity": int(result.granularity),
        "n_intervals": int(result.n_intervals),
        "modes": [int(m) for m in result.modes],
        "residency": float(result.residency),
        "ppw_gain": float(result.ppw_gain),
        "avg_performance": float(result.avg_performance),
        "energy_j": float(result.energy_j),
        "energy_baseline_j": float(result.energy_baseline_j),
        "switch_count": int(result.switch_count),
        "digest": _digest(result.modes, result.predictions,
                          result.labels, result.ipc, result.cycles,
                          result.cycles_baseline),
    }


def decide_payload(probs: np.ndarray, threshold: float) -> dict:
    """JSON-safe projection of one gating-probability window."""
    probs = np.asarray(probs, dtype=np.float64)
    return {
        "probs": [float(p) for p in probs],
        "decisions": [int(p >= threshold) for p in probs],
        "digest": _digest(probs),
    }
