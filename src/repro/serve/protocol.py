"""Wire protocol for the adaptation-serving daemon.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON. JSON keeps the protocol
stdlib-only and debuggable (``socat`` + a hex length works); the
length prefix makes framing explicit so a reader never has to guess
where one message ends. Python's ``json`` emits shortest-round-trip
``repr`` floats, so every float survives the wire bit-exactly — the
foundation of the daemon's bit-identity guarantee against direct
in-process :class:`~repro.core.adaptive_cpu.AdaptiveCPU` calls.

Request shapes (all dicts)::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "shutdown"}
    {"op": "adapt",  "trace_index": 3, "tenant": "t0"}
    {"op": "decide", "mode": "low_power", "window": [[...], ...],
     "tenant": "t1"}

Responses carry ``{"ok": true, ...}`` or a typed error
``{"ok": false, "error": "<kind>", ...}`` — ``busy`` is the admission
-control shed response and includes ``queue_depth``.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct

import numpy as np

from repro.errors import ProtocolError

#: Known request operations, in dispatch order.
OPS = ("ping", "stats", "adapt", "decide", "shutdown")

#: Operations the micro-batcher coalesces (the inference hot path);
#: the rest are answered inline by the connection handler.
BATCHED_OPS = ("adapt", "decide")

#: Hard bound on one frame's payload. Large enough for a full mode
#: schedule response or a multi-thousand-row telemetry window, small
#: enough that a corrupt length prefix cannot make the reader attempt
#: a gigabyte allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(obj: dict) -> bytes:
    """One wire frame for ``obj``: length prefix + compact JSON."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _LEN.pack(len(body)) + body


def send_frame(sock: socket.socket, obj: dict) -> None:
    """Write one frame to a connected socket."""
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame start."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining} of {n} "
                f"bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` when the peer closed cleanly."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ---------------------------------------------------------------------
# Payload builders. The server and the bit-identity checks share these,
# so "daemon response == direct AdaptiveCPU call" is a comparison of
# two dicts produced by the same projection — any numeric divergence
# between the batched daemon path and the direct path shows up.
# ---------------------------------------------------------------------
def _digest(*arrays: np.ndarray) -> str:
    """SHA-256 over the raw bytes of the given arrays, in order."""
    h = hashlib.sha256()
    for arr in arrays:
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def adapt_payload(result) -> dict:
    """JSON-safe projection of one ``AdaptiveRunResult``.

    Scalars ride as exact round-trip floats, the mode schedule as an
    int list (the decision the firmware would apply), and every dense
    array folds into one SHA-256 digest — so two payloads are equal
    iff the runs were bit-identical, without shipping megabytes.
    """
    return {
        "trace": result.trace_name,
        "app": result.app_name,
        "predictor": result.predictor_name,
        "granularity": int(result.granularity),
        "n_intervals": int(result.n_intervals),
        "modes": [int(m) for m in result.modes],
        "residency": float(result.residency),
        "ppw_gain": float(result.ppw_gain),
        "avg_performance": float(result.avg_performance),
        "energy_j": float(result.energy_j),
        "energy_baseline_j": float(result.energy_baseline_j),
        "switch_count": int(result.switch_count),
        "digest": _digest(result.modes, result.predictions,
                          result.labels, result.ipc, result.cycles,
                          result.cycles_baseline),
    }


def decide_payload(probs: np.ndarray, threshold: float) -> dict:
    """JSON-safe projection of one gating-probability window."""
    probs = np.asarray(probs, dtype=np.float64)
    return {
        "probs": [float(p) for p in probs],
        "decisions": [int(p >= threshold) for p in probs],
        "digest": _digest(probs),
    }
