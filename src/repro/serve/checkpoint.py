"""Warm-state checkpointing for the serving daemon.

A cold daemon start pays corpus synthesis plus predictor training
(and, when enabled, surrogate probe simulation) before it can answer
its first request. Under process supervision that bill is paid on
*every* crash — exactly when fast recovery matters most. This module
serializes the daemon's expensive warm state once at startup so a
supervised restart loads it back in milliseconds:

* the trace corpus (``list[TraceSpec]``),
* the trained :class:`~repro.core.predictor.DualModePredictor` inside
  its :class:`~repro.core.adaptive_cpu.AdaptiveCPU` (resident arena
  and interval-LRU drop out via the existing ``__getstate__`` hooks —
  both are rebuilt on load and can never change results),
* the fitted surrogate tier, when one is active (pickled in the same
  payload, so its ``model`` reference re-joins the CPU's interval
  model by pickle identity on load).

File format: ``magic | version | CRC32(payload) | payload-length |
pickle payload``, written atomically (tmp + rename). Every load
validates magic, version, length, CRC and the embedded **corpus
fingerprint** — a digest of everything that shapes the corpus and
predictor — against what the restarting daemon was asked to serve.
Any mismatch raises a typed :class:`~repro.errors.CheckpointError`
and the daemon falls back to a cold build: a bad checkpoint costs
startup time, never correctness.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import time
import zlib

from repro.errors import CheckpointError

#: File magic for repro serve checkpoints.
MAGIC = b"RSCK"

#: Bump whenever the payload layout (or anything pickled into it)
#: changes incompatibly.
CHECKPOINT_VERSION = 1

#: magic(4s) | version(>I) | crc32(>I) | payload length(>Q)
_HEADER = struct.Struct(">4sIIQ")


def corpus_fingerprint(predictor_kind: str, n_apps: int,
                       workloads_per_app: int, intervals: int,
                       seed: int) -> str:
    """Digest of every input that shapes the daemon's warm state.

    The corpus is a pure function of (shape, seed) and the predictor
    of (kind, corpus), so two daemons with equal fingerprints serve
    bit-identical state — the invariant that makes restoring a
    checkpoint indistinguishable from a cold build.
    """
    token = (f"v{CHECKPOINT_VERSION}/{predictor_kind}/{n_apps}/"
             f"{workloads_per_app}/{intervals}/{seed}")
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def save_checkpoint(path: str, cpu, traces: list,
                    fingerprint: str, generation: int = 0) -> dict:
    """Atomically write the daemon's warm state to ``path``.

    Returns ``{"path", "bytes", "elapsed_s"}`` for the daemon's
    startup log / health op. Raises :class:`CheckpointError` when the
    state cannot be pickled (exotic predictor collaborators) — the
    daemon then simply runs without fast-restart.

    ``generation`` is the model-registry generation of ``cpu``: 0 for
    cold builds, N after the continual loop's Nth promotion (the
    server rewrites the checkpoint at each promotion so supervised
    restarts resume warm on the promoted model, not the founder).
    """
    start = time.perf_counter()
    tier = getattr(cpu.collector.model, "_surrogate", None)
    payload_obj = {
        "fingerprint": fingerprint,
        "created": time.time(),
        "cpu": cpu,
        "traces": list(traces),
        # Same pickle as ``cpu``: the tier's interval-model reference
        # deduplicates against cpu.collector.model, so load-time
        # re-attachment is pure pointer surgery.
        "tier": tier,
        "generation": int(generation),
    }
    try:
        buf = io.BytesIO()
        pickle.dump(payload_obj, buf, protocol=pickle.HIGHEST_PROTOCOL)
        payload = buf.getvalue()
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        raise CheckpointError(
            f"serve state is not checkpointable: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    header = _HEADER.pack(MAGIC, CHECKPOINT_VERSION,
                          zlib.crc32(payload), len(payload))
    tmp = f"{path}.tmp.{os.getpid()}"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return {
        "path": path,
        "bytes": _HEADER.size + len(payload),
        "elapsed_s": round(time.perf_counter() - start, 6),
    }


def load_checkpoint(path: str, fingerprint: str) -> dict:
    """Validate and load a checkpoint written by :func:`save_checkpoint`.

    Returns ``{"cpu", "traces", "created", "age_s"}`` with the
    surrogate tier (when one was checkpointed) re-attached to the
    CPU's interval model. Raises :class:`CheckpointError` on a
    missing file, bad magic/version, truncation, CRC mismatch or a
    fingerprint that does not match the requested corpus.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path!r}")
    with open(path, "rb") as fh:
        raw_header = fh.read(_HEADER.size)
        if len(raw_header) != _HEADER.size:
            raise CheckpointError(
                f"checkpoint {path!r} truncated in header "
                f"({len(raw_header)} of {_HEADER.size} bytes)"
            )
        magic, version, crc, length = _HEADER.unpack(raw_header)
        if magic != MAGIC:
            raise CheckpointError(
                f"checkpoint {path!r} has bad magic {magic!r}"
            )
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} is version {version}, this "
                f"build reads {CHECKPOINT_VERSION}"
            )
        payload = fh.read(length)
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint {path!r} truncated in payload "
            f"({len(payload)} of {length} bytes)"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointError(
            f"checkpoint {path!r} failed its CRC32 check"
        )
    try:
        obj = pickle.loads(payload)
    except Exception as exc:  # corrupt-but-CRC-valid is hostile input
        raise CheckpointError(
            f"checkpoint {path!r} payload does not unpickle: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if obj.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path!r} fingerprint "
            f"{obj.get('fingerprint')!r} does not match requested "
            f"corpus {fingerprint!r}"
        )
    cpu = obj["cpu"]
    tier = obj.get("tier")
    if tier is not None:
        # Pickle identity already makes tier.model the CPU's interval
        # model; re-point defensively and re-install the tier so the
        # restored daemon scores through it without retraining.
        model = cpu.collector.model
        tier.model = model
        model._surrogate = tier
        model._surrogate_config = (tier.threshold, tier.n_probes)
    created = float(obj.get("created", 0.0))
    return {
        "cpu": cpu,
        "traces": obj["traces"],
        "created": created,
        "age_s": round(max(time.time() - created, 0.0), 3),
        # ``.get``: checkpoints written before the continual loop
        # carry no generation and load as generation 0.
        "generation": int(obj.get("generation", 0)),
    }


__all__ = ["CHECKPOINT_VERSION", "MAGIC", "corpus_fingerprint",
           "load_checkpoint", "save_checkpoint"]
