"""Admission control and per-tenant SLA budgets for the daemon.

Three pieces of back-pressure policy, all deliberately tiny:

* :class:`TenantLedger` — one :class:`~repro.core.sla.RollingSLA`
  window per tenant, fed with (service latency, latency budget) pairs
  as responses complete. The batcher orders pending requests by
  descending :meth:`TenantLedger.pressure`, so the tenant nearest its
  SLA violation budget drains first — the same accounting the paper's
  system-level SLA check uses, pointed at request latency instead of
  windowed IPC.
* :class:`DrainTracker` — a sliding window of recent batch
  completions, from which :func:`retry_after_ms` turns the queue
  depth at shed time into an actionable hint: roughly how long until
  the backlog ahead of a retry has drained. Clients honor it instead
  of hammering a saturated daemon with blind retries.
* Queue-bound admission lives in the batcher itself (it owns the
  queue); it raises :class:`~repro.errors.BusyError`, which the server
  maps to the typed ``busy`` response. This module just supplies the
  response shape so server and client agree on it.
"""

from __future__ import annotations

import collections
import threading
import time

from repro.core.sla import RollingSLA

#: Default per-tenant latency budget when a request names none.
DEFAULT_BUDGET_MS = 50.0

#: Observations per tenant SLA window. Small enough to adapt within a
#: burst, large enough that one slow request cannot flip priorities.
TENANT_WINDOW = 64

#: Fraction of a tenant's window allowed to violate its budget before
#: pressure reaches 1.0 (mirrors the paper's 99% window guarantee).
TENANT_GUARANTEE = 0.99


#: Bounds on the ``retry_after_ms`` hint. The floor keeps clients from
#: spinning on a sub-millisecond hint; the ceiling keeps one deep
#: backlog from parking every client for a minute.
RETRY_AFTER_MIN_MS = 1.0
RETRY_AFTER_MAX_MS = 10_000.0

#: Per-queued-request fallback (ms) when no drain rate is known yet —
#: a fresh daemon has served nothing, so assume a modest service time.
RETRY_AFTER_FALLBACK_PER_REQ_MS = 25.0


class DrainTracker:
    """Sliding-window completion counter: recent drain rate in req/s.

    The batcher records each flushed batch; :meth:`rate_rps` divides
    completions inside the window by the observed span. Thread-safe —
    connection handlers read rates while the batcher thread records.
    """

    def __init__(self, window_s: float = 5.0) -> None:
        self.window_s = float(window_s)
        self._lock = threading.Lock()
        self._events: collections.deque[tuple[float, int]] = \
            collections.deque()

    def record(self, n: int, now: float | None = None) -> None:
        """Account ``n`` completed requests at time ``now``."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._events.append((now, int(n)))
            self._trim(now)

    def _trim(self, now: float) -> None:
        horizon = now - self.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def rate_rps(self, now: float | None = None) -> float:
        """Completions per second over the recent window (0.0 if idle)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._trim(now)
            if not self._events:
                return 0.0
            completed = sum(n for _, n in self._events)
            # Span from the oldest retained event; floored so a single
            # burst does not read as an absurd rate.
            span = max(now - self._events[0][0], 0.050)
            return completed / span


def retry_after_ms(queue_depth: int, drain_rate_rps: float) -> float:
    """How long (ms) until a retry likely clears the current backlog."""
    ahead = max(queue_depth, 1)
    if drain_rate_rps > 0.0:
        hint = ahead / drain_rate_rps * 1e3
    else:
        hint = ahead * RETRY_AFTER_FALLBACK_PER_REQ_MS
    return round(min(max(hint, RETRY_AFTER_MIN_MS), RETRY_AFTER_MAX_MS),
                 3)


def busy_response(request_id: object, queue_depth: int,
                  queue_bound: int,
                  retry_after: float | None = None) -> dict:
    """The typed shed response admission control returns under load.

    ``retry_after`` is the drain-rate-derived hint in milliseconds
    (computed via :func:`retry_after_ms`); ``None`` falls back to the
    no-rate estimate from the queue depth alone.
    """
    if retry_after is None:
        retry_after = retry_after_ms(queue_depth, 0.0)
    return {
        "id": request_id,
        "ok": False,
        "error": "busy",
        "queue_depth": queue_depth,
        "queue_bound": queue_bound,
        "retry": True,
        "retry_after_ms": retry_after,
    }


class TenantLedger:
    """Per-tenant rolling latency-SLA accounting.

    Thread-safe: connection handlers record completions while the
    batcher thread reads pressures to order the next batch.
    """

    def __init__(self, default_budget_ms: float = DEFAULT_BUDGET_MS,
                 window: int = TENANT_WINDOW,
                 guarantee: float = TENANT_GUARANTEE) -> None:
        self.default_budget_ms = default_budget_ms
        self.window = window
        self.guarantee = guarantee
        self._lock = threading.Lock()
        self._tenants: dict[str, RollingSLA] = {}

    def _window_for(self, tenant: str) -> RollingSLA:
        sla = self._tenants.get(tenant)
        if sla is None:
            sla = RollingSLA(self.window, performance_floor=1.0,
                             guarantee=self.guarantee)
            self._tenants[tenant] = sla
        return sla

    def record(self, tenant: str, latency_s: float,
               budget_ms: float | None = None) -> None:
        """Account one served request against the tenant's budget."""
        budget_s = (budget_ms if budget_ms is not None
                    else self.default_budget_ms) / 1e3
        with self._lock:
            self._window_for(tenant).observe(latency_s, budget_s)

    def pressure(self, tenant: str) -> float:
        """Current SLA pressure of a tenant (0.0 when unseen)."""
        with self._lock:
            sla = self._tenants.get(tenant)
            return sla.pressure() if sla is not None else 0.0

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant accounting for the ``stats`` op."""
        with self._lock:
            out = {}
            for tenant, sla in self._tenants.items():
                acct = sla.accounting()
                out[tenant] = {
                    "observations": acct.n_windows,
                    "violations": acct.n_violations,
                    "pressure": round(sla.pressure(), 4),
                }
            return out
