"""Admission control and per-tenant SLA budgets for the daemon.

Two pieces of back-pressure policy, both deliberately tiny:

* :class:`TenantLedger` — one :class:`~repro.core.sla.RollingSLA`
  window per tenant, fed with (service latency, latency budget) pairs
  as responses complete. The batcher orders pending requests by
  descending :meth:`TenantLedger.pressure`, so the tenant nearest its
  SLA violation budget drains first — the same accounting the paper's
  system-level SLA check uses, pointed at request latency instead of
  windowed IPC.
* Queue-bound admission lives in the batcher itself (it owns the
  queue); it raises :class:`~repro.errors.BusyError`, which the server
  maps to the typed ``busy`` response. This module just supplies the
  response shape so server and client agree on it.
"""

from __future__ import annotations

import threading

from repro.core.sla import RollingSLA

#: Default per-tenant latency budget when a request names none.
DEFAULT_BUDGET_MS = 50.0

#: Observations per tenant SLA window. Small enough to adapt within a
#: burst, large enough that one slow request cannot flip priorities.
TENANT_WINDOW = 64

#: Fraction of a tenant's window allowed to violate its budget before
#: pressure reaches 1.0 (mirrors the paper's 99% window guarantee).
TENANT_GUARANTEE = 0.99


def busy_response(request_id: object, queue_depth: int,
                  queue_bound: int) -> dict:
    """The typed shed response admission control returns under load."""
    return {
        "id": request_id,
        "ok": False,
        "error": "busy",
        "queue_depth": queue_depth,
        "queue_bound": queue_bound,
        "retry": True,
    }


class TenantLedger:
    """Per-tenant rolling latency-SLA accounting.

    Thread-safe: connection handlers record completions while the
    batcher thread reads pressures to order the next batch.
    """

    def __init__(self, default_budget_ms: float = DEFAULT_BUDGET_MS,
                 window: int = TENANT_WINDOW,
                 guarantee: float = TENANT_GUARANTEE) -> None:
        self.default_budget_ms = default_budget_ms
        self.window = window
        self.guarantee = guarantee
        self._lock = threading.Lock()
        self._tenants: dict[str, RollingSLA] = {}

    def _window_for(self, tenant: str) -> RollingSLA:
        sla = self._tenants.get(tenant)
        if sla is None:
            sla = RollingSLA(self.window, performance_floor=1.0,
                             guarantee=self.guarantee)
            self._tenants[tenant] = sla
        return sla

    def record(self, tenant: str, latency_s: float,
               budget_ms: float | None = None) -> None:
        """Account one served request against the tenant's budget."""
        budget_s = (budget_ms if budget_ms is not None
                    else self.default_budget_ms) / 1e3
        with self._lock:
            self._window_for(tenant).observe(latency_s, budget_s)

    def pressure(self, tenant: str) -> float:
        """Current SLA pressure of a tenant (0.0 when unseen)."""
        with self._lock:
            sla = self._tenants.get(tenant)
            return sla.pressure() if sla is not None else 0.0

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant accounting for the ``stats`` op."""
        with self._lock:
            out = {}
            for tenant, sla in self._tenants.items():
                acct = sla.accounting()
                out[tenant] = {
                    "observations": acct.n_windows,
                    "violations": acct.n_violations,
                    "pressure": round(sla.pressure(), 4),
                }
            return out
