"""Background learner: drift-triggered retrain, shadow-gated promote.

The continual-adaptation control loop, run off the serving path on its
own daemon thread:

1. **Poll** the :class:`~repro.online.drift.DriftDetector` each tick.
   No signal → go back to sleep; serving never notices.
2. **Retrain** on drift: fit a candidate dual-mode forest on the
   *recently served* traces (the drift window's distinct trace
   indices), reusing the daemon's warm
   :class:`~repro.sim.collector` interval LRU and its
   :class:`~repro.exec.parallel.ParallelMap` pools — a retrain costs
   tree fitting, not re-simulation.
3. **Shadow-evaluate**: run both the incumbent and the candidate (via
   :meth:`ModelRegistry.shadow_cpu`, which shares all warm state) over
   the evaluation traces, off the serving path.
4. **Gate**: the candidate is promoted only if it is at least as good
   on *both* axes — mean PPW gain no worse, pooled RSV (the paper's
   SLA-violation rate, Eq. 3) no worse. A candidate that trades SLA
   safety for throughput is rejected and the incumbent keeps serving.
5. **Promote**: :meth:`ModelRegistry.swap` installs generation N+1 at
   the next batch boundary, the promotion is persisted through the
   serve checkpoint (supervised restarts resume warm on the new
   model), and the drift detector re-baselines so the new incumbent is
   judged against its own steady state.

Every decision is recorded as a frozen :class:`ShadowVerdict` and
surfaced through the ``health`` op; promotions/rejections/errors also
count into the metrics registry for the run report.

Determinism: candidate training seeds derive from
``derive_seed(seed, "online", generation, mode)``, so a given drift
event retrains the identical candidate across runs; ``step()`` is
callable synchronously (benchmarks and tests drive it without the
thread).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Sequence

import numpy as np

from repro import rng as rng_mod
from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.data.builders import build_mode_dataset
from repro.errors import SwapGateError
from repro.eval.metrics import pooled_rsv
from repro.ml.base import Estimator
from repro.ml.forest import RandomForestClassifier
from repro.obs.metrics import METRICS
from repro.online.drift import DriftDetector, DriftSignal
from repro.online.registry import ModelRegistry
from repro.online.ringbuf import OP_ADAPT, TelemetryRing
from repro.uarch.modes import Mode

#: Cap on the RSV pooling window so short prediction streams (coarse
#: granularity, short traces) still fill at least one window each.
_RSV_WINDOW_CAP = 16


@dataclasses.dataclass(frozen=True)
class ShadowVerdict:
    """Outcome of one drift-triggered retrain attempt.

    ``promoted`` says whether the candidate passed the shadow gate and
    was swapped in; ``generation`` is the generation that resulted
    (N+1 on promotion, the unchanged N on rejection). The four metric
    fields are the gate's inputs; ``traces`` is how many evaluation
    traces they were pooled over.
    """

    promoted: bool
    candidate_tag: str
    generation: int
    candidate_ppw: float
    incumbent_ppw: float
    candidate_rsv: float
    incumbent_rsv: float
    traces: int
    reason: str

    def snapshot(self) -> dict:
        """Health-op projection of the verdict."""
        return {
            "promoted": self.promoted,
            "candidate_tag": self.candidate_tag,
            "generation": self.generation,
            "candidate_ppw": round(self.candidate_ppw, 6),
            "incumbent_ppw": round(self.incumbent_ppw, 6),
            "candidate_rsv": round(self.candidate_rsv, 6),
            "incumbent_rsv": round(self.incumbent_rsv, 6),
            "traces": self.traces,
            "reason": self.reason,
        }


class OnlineLearner:
    """Drift-triggered background retraining with a shadow gate."""

    def __init__(self, registry: ModelRegistry, ring: TelemetryRing,
                 detector: DriftDetector, traces: Sequence,
                 pmap=None, interval_s: float = 2.0, seed: int = 0,
                 n_train: int = 6, n_trees: int = 12,
                 max_depth: int = 6, eval_traces: int = 6,
                 candidate_fn: Callable[..., DualModePredictor] | None = None,
                 on_promote: Callable[[int], None] | None = None) -> None:
        self.registry = registry
        self.ring = ring
        self.detector = detector
        self.traces = list(traces)
        self.pmap = pmap
        self.interval_s = interval_s
        self.seed = seed
        self.n_train = n_train
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.eval_traces = eval_traces
        # Test/benchmark hook: replaces candidate training wholesale
        # (e.g. to hand the gate a deliberately degraded predictor).
        self.candidate_fn = candidate_fn
        # Promotion side-effect (the server persists the generation
        # into its checkpoint here); failures count, never crash.
        self.on_promote = on_promote
        self.ticks = 0
        self.retrains = 0
        self.last_verdict: ShadowVerdict | None = None
        self.last_error: str | None = None
        self.last_drift_to_promote_s: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Thread lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="online-learner",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout_s)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.step()
            except Exception as exc:  # keep the loop alive
                self.last_error = f"{type(exc).__name__}: {exc}"
                METRICS.incr("online.learner_errors")

    # ------------------------------------------------------------------
    # One control-loop iteration (synchronously callable).
    # ------------------------------------------------------------------
    def step(self) -> ShadowVerdict | None:
        """Poll for drift; on a signal, retrain / gate / maybe swap."""
        self.ticks += 1
        METRICS.incr("online.drift_checks")
        generation = self.registry.generation
        signal = self.detector.check(self.ring, generation)
        if signal is None:
            return None
        METRICS.incr("online.drift_signals")
        started = time.perf_counter()
        verdict = self._retrain_and_gate(signal, generation)
        self.last_verdict = verdict
        if verdict.promoted:
            self.last_drift_to_promote_s = time.perf_counter() - started
            METRICS.observe("online.drift_to_promote_s",
                            self.last_drift_to_promote_s)
        return verdict

    def _retrain_and_gate(self, signal: DriftSignal,
                          generation: int) -> ShadowVerdict:
        train, evaluate = self._recent_traces()
        tag = f"gen{generation + 1}-{signal.kind}"
        self.retrains += 1
        METRICS.incr("online.retrains")
        if self.candidate_fn is not None:
            candidate = self.candidate_fn(self, signal, generation)
        else:
            candidate = self._train_candidate(train, generation)
        incumbent_cpu = self.registry.current().cpu
        try:
            shadow = self.registry.shadow_cpu(candidate)
        except SwapGateError as exc:
            METRICS.incr("online.rejections")
            return ShadowVerdict(
                promoted=False, candidate_tag=tag,
                generation=generation, candidate_ppw=float("nan"),
                incumbent_ppw=float("nan"),
                candidate_rsv=float("nan"),
                incumbent_rsv=float("nan"), traces=0,
                reason=f"swap gate: {exc}")
        cand_ppw, cand_rsv = self._score(shadow, evaluate)
        inc_ppw, inc_rsv = self._score(incumbent_cpu, evaluate)
        promoted = cand_ppw >= inc_ppw and cand_rsv <= inc_rsv
        if promoted:
            entry = self.registry.swap(candidate, tag=tag)
            METRICS.incr("online.promotions")
            if self.on_promote is not None:
                try:
                    self.on_promote(entry.generation)
                except Exception:  # persistence is best-effort
                    METRICS.incr("online.persist_failed")
            # Judge the new incumbent against its own steady state.
            self.detector.rebaseline(self.ring)
            reason = (f"candidate >= incumbent on ppw "
                      f"({cand_ppw:.4f} vs {inc_ppw:.4f}) and rsv "
                      f"({cand_rsv:.4f} vs {inc_rsv:.4f})")
            return ShadowVerdict(
                promoted=True, candidate_tag=tag,
                generation=entry.generation, candidate_ppw=cand_ppw,
                incumbent_ppw=inc_ppw, candidate_rsv=cand_rsv,
                incumbent_rsv=inc_rsv, traces=len(evaluate),
                reason=reason)
        METRICS.incr("online.rejections")
        if cand_ppw < inc_ppw:
            reason = (f"candidate ppw {cand_ppw:.4f} < incumbent "
                      f"{inc_ppw:.4f}")
        else:
            reason = (f"candidate rsv {cand_rsv:.4f} > incumbent "
                      f"{inc_rsv:.4f}")
        return ShadowVerdict(
            promoted=False, candidate_tag=tag, generation=generation,
            candidate_ppw=cand_ppw, incumbent_ppw=inc_ppw,
            candidate_rsv=cand_rsv, incumbent_rsv=inc_rsv,
            traces=len(evaluate), reason=reason)

    # ------------------------------------------------------------------
    # Pieces.
    # ------------------------------------------------------------------
    def _recent_traces(self) -> tuple[list, list]:
        """(train, evaluate) trace lists from the ring's drift window.

        Distinct served trace indices, most recent first — the traces
        the drifted mix actually consists of. Falls back to a corpus
        prefix when the ring holds nothing usable (cannot happen after
        a drift signal, but keeps the method total).
        """
        rows = self.ring.window(self.detector.window, op=OP_ADAPT)
        seen: list[int] = []
        for idx in rows["trace_index"][::-1]:
            i = int(idx)
            if 0 <= i < len(self.traces) and i not in seen:
                seen.append(i)
        if not seen:
            seen = list(range(min(len(self.traces), self.n_train)))
        train = [self.traces[i] for i in seen[:max(2, self.n_train)]]
        evaluate = [self.traces[i] for i in seen[:max(2, self.eval_traces)]]
        return train, evaluate

    def _train_candidate(self, train: list,
                         generation: int) -> DualModePredictor:
        """Fit a candidate dual forest on the recently served traces.

        Mirrors the serve-time ``quick_forest_predictor`` recipe but
        trains on the drift window's traces, shares the incumbent's
        collector (so datasets build from the warm interval LRU) and
        seeds deterministically per generation.
        """
        incumbent = self.registry.current().cpu
        predictor = incumbent.predictor
        counter_ids = np.asarray(predictor.counter_ids)
        models: dict[Mode, Estimator] = {}
        for mode in Mode:
            dataset = build_mode_dataset(
                train, mode, counter_ids, sla=incumbent.sla,
                collector=incumbent.collector,
                granularity_factor=predictor.granularity_factor,
                pmap=self.pmap)
            forest = RandomForestClassifier(
                n_trees=self.n_trees, max_depth=self.max_depth,
                seed=rng_mod.derive_seed(self.seed, "online",
                                         generation, mode.value))
            forest.fit(dataset.x, dataset.y)
            models[mode] = forest
        return DualModePredictor(
            name=f"online_gen{generation + 1}", models=models,
            counter_ids=counter_ids,
            granularity_factor=predictor.granularity_factor)

    def _score(self, cpu: AdaptiveCPU,
               evaluate: list) -> tuple[float, float]:
        """(mean PPW gain, pooled RSV) of ``cpu`` over ``evaluate``."""
        results = cpu.run_many(evaluate, pmap=self.pmap)
        ppw = float(np.mean([r.ppw_gain for r in results]))
        streams = [(r.labels, r.predictions) for r in results]
        window = min(_RSV_WINDOW_CAP,
                     min(r.labels.shape[0] for r in results))
        rsv = pooled_rsv(streams, max(1, window))
        return ppw, rsv

    def snapshot(self) -> dict:
        """Health-op projection of the learner's state."""
        last = self.last_verdict
        return {
            "ticks": self.ticks,
            "retrains": self.retrains,
            "running": self._thread is not None,
            "interval_s": self.interval_s,
            "last_error": self.last_error,
            "last_verdict": None if last is None else last.snapshot(),
        }


__all__ = ["OnlineLearner", "ShadowVerdict"]
