"""Generation-stamped model registry with atomic hot-swap.

The actor/learner split's rendezvous point: the serving executors
(actors) resolve the current :class:`ModelEntry` exactly once per
batch, the background learner pushes a promoted candidate in with
:meth:`ModelRegistry.swap`, and the generation fence between them is
what makes swaps invisible to in-flight work:

* an executor snapshots ``(generation, cpu)`` at batch start and runs
  the *whole* batch against that immutable entry — a swap landing
  mid-batch changes nothing the batch can observe, so its responses
  stay digest-identical to direct calls on the model it started with;
* :meth:`swap` replaces the current entry under the lock in one
  assignment — the next batch's snapshot atomically sees generation
  N+1. No pause, no drain, no request ever waits on a swap.

Compatibility gate: the daemon's resident
:class:`~repro.exec.arena.TraceArena` pickles the *founding* CPU, and
worker-side preparation reads exactly two predictor properties from it
— ``counter_ids`` and ``granularity_factor`` (everything else about
preparation is predictor-independent; inference runs parent-side on
the entry's own predictor). A candidate that changed either would
silently desynchronize prepared telemetry from inference, so
:meth:`swap` rejects it with a typed
:class:`~repro.errors.SwapGateError` before any state changes.

Swapped-in CPUs share the founder's collector (interval model + its
warm LRU + surrogate tier + SimCache), power/machine/SLA models and
the resident arena — a swap is pointer surgery plus one
``AdaptiveCPU`` construction, not a rebuild of daemon state.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from repro.core.adaptive_cpu import AdaptiveCPU
from repro.core.predictor import DualModePredictor
from repro.errors import SwapGateError
from repro.obs.metrics import METRICS


@dataclasses.dataclass(frozen=True)
class ModelEntry:
    """One immutable (generation, model) pair.

    Executors hold an entry for the lifetime of a batch; the frozen
    dataclass makes "the model a batch started with" a value, not a
    mutable reference.
    """

    generation: int
    cpu: AdaptiveCPU
    tag: str


class ModelRegistry:
    """Holds the serving model; swaps at batch boundaries."""

    def __init__(self, cpu: AdaptiveCPU, generation: int = 0,
                 tag: str = "incumbent") -> None:
        self._lock = threading.Lock()
        # The founder owns the resident arena; swapped-in CPUs borrow
        # its mapping (see shadow_cpu) and never close it.
        self._founder = cpu
        self._current = ModelEntry(generation=generation, cpu=cpu,
                                   tag=tag)
        self.swaps = 0
        self.last_swap_latency_s: float | None = None
        self.last_swap_tag: str | None = None

    # ------------------------------------------------------------------
    def current(self) -> ModelEntry:
        """The serving entry — call once per batch, use throughout."""
        with self._lock:
            return self._current

    @property
    def generation(self) -> int:
        with self._lock:
            return self._current.generation

    @property
    def cpu(self) -> AdaptiveCPU:
        with self._lock:
            return self._current.cpu

    # ------------------------------------------------------------------
    def validate(self, predictor: DualModePredictor) -> None:
        """Raise :class:`SwapGateError` unless ``predictor`` is
        hot-swap compatible with the current entry."""
        incumbent = self.current().cpu.predictor
        if not np.array_equal(np.asarray(predictor.counter_ids),
                              np.asarray(incumbent.counter_ids)):
            raise SwapGateError(
                f"candidate {predictor.name!r} changes the counter set "
                f"({list(np.asarray(predictor.counter_ids))} vs "
                f"{list(np.asarray(incumbent.counter_ids))}); the "
                f"resident arena's prepared telemetry would no longer "
                f"match inference"
            )
        if predictor.granularity_factor != incumbent.granularity_factor:
            raise SwapGateError(
                f"candidate {predictor.name!r} changes the gating "
                f"granularity ({predictor.granularity_factor} vs "
                f"{incumbent.granularity_factor})"
            )

    def shadow_cpu(self, predictor: DualModePredictor) -> AdaptiveCPU:
        """An :class:`AdaptiveCPU` for ``predictor`` sharing every
        piece of warm daemon state except the predictor itself.

        Used both for shadow evaluation (score a candidate on recent
        traces without touching the serving entry) and as the CPU a
        promotion installs. The founder's resident arena and index are
        borrowed by reference: preparation fans out through the shared
        mapping, and since the arena only bakes in ``counter_ids`` +
        ``granularity_factor`` (validated above), prepared telemetry is
        correct for any compatible predictor.
        """
        self.validate(predictor)
        base = self._founder
        cpu = AdaptiveCPU(predictor, collector=base.collector,
                          power=base.power, machine=base.machine,
                          sla=base.sla, horizon=base.horizon)
        cpu._resident_arena = base._resident_arena
        cpu._resident_index = base._resident_index
        return cpu

    def swap(self, predictor: DualModePredictor,
             tag: str = "candidate") -> ModelEntry:
        """Install ``predictor`` as generation N+1; returns the entry.

        Validation happens before any state changes; the installation
        itself is one locked assignment, so concurrent ``current()``
        snapshots see either the old entry or the new one, never a
        mixture.
        """
        start = time.perf_counter()
        cpu = self.shadow_cpu(predictor)
        with self._lock:
            entry = ModelEntry(
                generation=self._current.generation + 1,
                cpu=cpu, tag=tag)
            self._current = entry
            self.swaps += 1
            self.last_swap_latency_s = time.perf_counter() - start
            self.last_swap_tag = tag
        METRICS.incr("online.swaps")
        METRICS.observe("online.swap_latency_s",
                        self.last_swap_latency_s)
        return entry

    def close(self) -> None:
        """Release the founder's resident arena (idempotent).

        Borrower CPUs drop their references too so nothing dangles on
        a closed mapping.
        """
        with self._lock:
            current = self._current.cpu
        self._founder.close_resident_arena()
        if current is not self._founder:
            current._resident_arena = None
            current._resident_index = {}

    def snapshot(self) -> dict:
        """Health-op projection of the registry's state."""
        with self._lock:
            entry = self._current
            return {
                "generation": entry.generation,
                "tag": entry.tag,
                "predictor": entry.cpu.predictor.name,
                "swaps": self.swaps,
                "last_swap_latency_ms":
                    None if self.last_swap_latency_s is None
                    else round(self.last_swap_latency_s * 1e3, 3),
            }


__all__ = ["ModelEntry", "ModelRegistry"]
