"""Bounded telemetry ring buffer for the continual-adaptation loop.

The serving daemon samples what it serves — which corpus traces
``adapt`` requests address, how accurate the deployed predictor's
gating decisions turned out against the interval tier's oracle labels,
what residency/PPW it realized, and how aggressively ``decide``
answers gate — into one preallocated, fixed-dtype numpy ring. The
learner and drift detector read windows off this ring; nothing else in
the daemon ever blocks on it.

Hot-path discipline: the record is one structured-array row write into
storage allocated at construction. Sampling is the deterministic
counter-based 1-in-N scheme the span tracer uses (``seed`` fixes the
phase), so two daemons fed the same request stream sample identical
entries — no RNG draw, no clock read, no allocation per request.

Thread-safety: appends come from the batcher executor threads and
reads from the learner thread; a single lock around the (tiny) row
write and the window copies keeps the ring consistent without
measurable hot-path cost.
"""

from __future__ import annotations

import threading

import numpy as np

#: ``op`` field codes.
OP_ADAPT = 0
OP_DECIDE = 1

#: One sampled observation. ``trace_index`` is -1 for decide entries
#: (they address telemetry windows, not corpus traces); ``accuracy``
#: is the realized agreement between the deployed predictor's gating
#: decisions and the oracle labels (adapt entries only); ``low_rate``
#: is the fraction of low-power decisions in a decide window.
RING_DTYPE = np.dtype([
    ("seq", np.uint64),
    ("op", np.uint8),
    ("generation", np.int32),
    ("trace_index", np.int32),
    ("accuracy", np.float32),
    ("ppw_gain", np.float32),
    ("residency", np.float32),
    ("low_rate", np.float32),
])


class TelemetryRing:
    """Fixed-capacity sampled ring of served-request observations."""

    def __init__(self, capacity: int, sample: int = 1,
                 seed: int = 0) -> None:
        if capacity < 8:
            raise ValueError(f"capacity must be >= 8, got {capacity}")
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.capacity = capacity
        self.sample = sample
        self._rows = np.zeros(capacity, dtype=RING_DTYPE)
        self._lock = threading.Lock()
        self._write = 0  # next slot to write
        self._size = 0  # valid rows (<= capacity)
        self._seen = seed % sample  # sampling phase: deterministic
        self._sampled = 0

    # ------------------------------------------------------------------
    # Producers (batcher executor threads).
    # ------------------------------------------------------------------
    def _append(self, op: int, trace_index: int, generation: int,
                accuracy: float, ppw_gain: float, residency: float,
                low_rate: float) -> bool:
        """Record one observation; False when sampled out."""
        with self._lock:
            self._seen += 1
            if self._seen % self.sample:
                return False
            row = self._rows[self._write]
            row["seq"] = self._sampled
            row["op"] = op
            row["generation"] = generation
            row["trace_index"] = trace_index
            row["accuracy"] = accuracy
            row["ppw_gain"] = ppw_gain
            row["residency"] = residency
            row["low_rate"] = low_rate
            self._write = (self._write + 1) % self.capacity
            self._size = min(self._size + 1, self.capacity)
            self._sampled += 1
            return True

    def record_adapt(self, trace_index: int, generation: int,
                     accuracy: float, ppw_gain: float,
                     residency: float) -> bool:
        """Sample one served ``adapt`` outcome."""
        return self._append(OP_ADAPT, trace_index, generation,
                            accuracy, ppw_gain, residency, 0.0)

    def record_decide(self, generation: int, low_rate: float) -> bool:
        """Sample one served ``decide`` window."""
        return self._append(OP_DECIDE, -1, generation,
                            0.0, 0.0, 0.0, low_rate)

    # ------------------------------------------------------------------
    # Consumers (the learner thread, health probes).
    # ------------------------------------------------------------------
    def window(self, n: int, op: int | None = None) -> np.ndarray:
        """Copy of the most recent ``n`` sampled entries, oldest first.

        With ``op`` set, the most recent ``n`` entries *of that op*
        (scanned over the whole ring). Returns fewer rows when the ring
        holds fewer.
        """
        with self._lock:
            size = self._size
            start = (self._write - size) % self.capacity
            idx = (start + np.arange(size)) % self.capacity
            rows = self._rows[idx].copy()
        if op is not None:
            rows = rows[rows["op"] == op]
        return rows[-n:] if n < rows.shape[0] else rows

    @property
    def seen(self) -> int:
        """Observations offered (before sampling), minus the seed phase."""
        with self._lock:
            return self._seen

    @property
    def sampled(self) -> int:
        """Observations actually written (including overwritten ones)."""
        with self._lock:
            return self._sampled

    def occupancy(self) -> int:
        """Valid rows currently held (saturates at ``capacity``)."""
        with self._lock:
            return self._size

    def snapshot(self) -> dict:
        """Health-op projection of the ring's state."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "sample": self.sample,
                "occupancy": self._size,
                "sampled": self._sampled,
                "wrapped": self._sampled > self.capacity,
            }


__all__ = ["OP_ADAPT", "OP_DECIDE", "RING_DTYPE", "TelemetryRing"]
