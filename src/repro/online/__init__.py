"""Continual adaptation: drift detection, retraining, hot-swap.

The serving daemon (``repro.serve``) answers adaptation queries from a
fixed predictor; this package closes the loop for long-lived
deployments where the served workload mix drifts away from what that
predictor was trained on:

* :mod:`repro.online.ringbuf` — bounded, sampled telemetry ring the
  daemon's executors feed with served-request outcomes;
* :mod:`repro.online.drift` — windowed population-stability and
  accuracy-proxy checks over the ring, emitting typed
  :class:`DriftSignal` events;
* :mod:`repro.online.learner` — the background control loop: retrain
  on drift, shadow-evaluate against the incumbent, promote only
  candidates that are no worse on both PPW and RSV;
* :mod:`repro.online.registry` — the generation-stamped model registry
  whose atomic swap (under the batch-boundary generation fence) makes
  a promotion invisible to in-flight requests.

Everything here is thread-safe and usable standalone; the serving
integration lives in ``repro.serve.server`` behind the
``REPRO_ONLINE`` knob.
"""

from repro.online.drift import (DriftDetector, DriftSignal,
                                population_stability_index)
from repro.online.learner import OnlineLearner, ShadowVerdict
from repro.online.registry import ModelEntry, ModelRegistry
from repro.online.ringbuf import (OP_ADAPT, OP_DECIDE, RING_DTYPE,
                                  TelemetryRing)

__all__ = [
    "DriftDetector",
    "DriftSignal",
    "ModelEntry",
    "ModelRegistry",
    "OP_ADAPT",
    "OP_DECIDE",
    "OnlineLearner",
    "RING_DTYPE",
    "ShadowVerdict",
    "TelemetryRing",
    "population_stability_index",
]
