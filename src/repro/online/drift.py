"""Drift detection over the online telemetry ring.

The deployed predictor was trained against one workload mix; when the
served mix shifts (or the predictor's realized accuracy sags), the
incumbent is stale and a retrain is warranted. Two windowed checks run
over the ring's sampled ``adapt`` entries:

* **Population stability** — the population stability index (PSI)
  between the reference window's served-trace distribution and the
  most recent window's. PSI ≥ ~0.25 is the classic "distribution has
  shifted, act" threshold; it is symmetric and scale-free, so it works
  on the small categorical histogram of corpus trace indices.
* **Accuracy proxy** — the mean agreement between deployed gating
  decisions and the oracle labels (computed per served trace by the
  interval tier, so it is free at serve time). A drop beyond
  ``accuracy_drop`` against the reference window trips even when the
  mix looks stable — the predictor itself degraded.

The reference window is captured from the ring the first time enough
samples exist, and re-captured after every promotion
(:meth:`DriftDetector.rebaseline`) so the new incumbent is judged
against its own steady state, not its predecessor's.
"""

from __future__ import annotations

import dataclasses
import threading

import numpy as np

from repro.online.ringbuf import OP_ADAPT, TelemetryRing

#: Laplace smoothing for the PSI histograms: keeps empty bins from
#: producing infinite scores while barely perturbing occupied ones.
_PSI_EPS = 1e-4


@dataclasses.dataclass(frozen=True)
class DriftSignal:
    """One tripped drift check.

    ``kind`` is ``"population"`` (PSI over the served-trace histogram)
    or ``"accuracy"`` (accuracy-proxy drop); ``score`` is the tripped
    statistic, ``threshold`` what it exceeded, ``generation`` the model
    generation that was serving when the window was observed.
    """

    kind: str
    score: float
    threshold: float
    window: int
    generation: int
    detail: str = ""


def population_stability_index(reference: np.ndarray,
                               recent: np.ndarray,
                               n_bins: int) -> float:
    """PSI between two categorical samples over ``[0, n_bins)``."""
    ref_hist = np.bincount(reference, minlength=n_bins).astype(np.float64)
    rec_hist = np.bincount(recent, minlength=n_bins).astype(np.float64)
    p = (ref_hist + _PSI_EPS) / (ref_hist.sum() + n_bins * _PSI_EPS)
    q = (rec_hist + _PSI_EPS) / (rec_hist.sum() + n_bins * _PSI_EPS)
    return float(np.sum((q - p) * np.log(q / p)))


class DriftDetector:
    """Windowed PSI + accuracy-proxy checks over a telemetry ring."""

    def __init__(self, window: int, threshold: float, n_traces: int,
                 accuracy_drop: float = 0.10) -> None:
        if window < 8:
            raise ValueError(f"window must be >= 8, got {window}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if n_traces < 1:
            raise ValueError(f"n_traces must be >= 1, got {n_traces}")
        self.window = window
        self.threshold = threshold
        self.n_traces = n_traces
        self.accuracy_drop = accuracy_drop
        self._lock = threading.Lock()
        self._ref_indices: np.ndarray | None = None
        self._ref_accuracy: float | None = None
        self._ref_seq: int = -1
        self.checks = 0
        self.last_score: float | None = None
        self.last_signal: DriftSignal | None = None

    # ------------------------------------------------------------------
    def rebaseline(self, ring: TelemetryRing) -> bool:
        """Capture the current recent window as the new reference.

        Called after a promotion (and implicitly on the first full
        window). False when the ring does not yet hold a full window.
        """
        rows = ring.window(self.window, op=OP_ADAPT)
        if rows.shape[0] < self.window:
            return False
        with self._lock:
            self._ref_indices = rows["trace_index"].astype(np.int64)
            self._ref_accuracy = float(rows["accuracy"].mean())
            self._ref_seq = int(rows["seq"][-1])
        return True

    def check(self, ring: TelemetryRing,
              generation: int) -> DriftSignal | None:
        """One drift poll; a typed signal when a check trips.

        The recent window must be disjoint from the reference window
        (entirely newer samples) before a comparison is made —
        otherwise the reference would be compared against itself and
        drift could never register on a quiet ring.
        """
        rows = ring.window(self.window, op=OP_ADAPT)
        with self._lock:
            self.checks += 1
            if self._ref_indices is None:
                # First full window becomes the baseline.
                if rows.shape[0] >= self.window:
                    self._ref_indices = rows["trace_index"].astype(
                        np.int64)
                    self._ref_accuracy = float(rows["accuracy"].mean())
                    self._ref_seq = int(rows["seq"][-1])
                return None
            if rows.shape[0] < self.window:
                return None
            if int(rows["seq"][0]) <= self._ref_seq:
                return None  # window still overlaps the reference
            score = population_stability_index(
                self._ref_indices,
                rows["trace_index"].astype(np.int64),
                self.n_traces)
            self.last_score = score
            signal = None
            if score >= self.threshold:
                signal = DriftSignal(
                    kind="population", score=score,
                    threshold=self.threshold, window=self.window,
                    generation=generation,
                    detail="served-trace mix shifted (PSI)")
            else:
                accuracy = float(rows["accuracy"].mean())
                drop = self._ref_accuracy - accuracy
                if drop >= self.accuracy_drop:
                    signal = DriftSignal(
                        kind="accuracy", score=drop,
                        threshold=self.accuracy_drop,
                        window=self.window, generation=generation,
                        detail=f"gating accuracy fell "
                               f"{self._ref_accuracy:.3f} -> "
                               f"{accuracy:.3f}")
            if signal is not None:
                self.last_signal = signal
            return signal

    def snapshot(self) -> dict:
        """Health-op projection of the detector's state."""
        with self._lock:
            last = self.last_signal
            return {
                "window": self.window,
                "threshold": self.threshold,
                "checks": self.checks,
                "baselined": self._ref_indices is not None,
                "last_score": self.last_score,
                "last_signal": None if last is None else {
                    "kind": last.kind,
                    "score": round(last.score, 6),
                    "generation": last.generation,
                },
            }


__all__ = ["DriftDetector", "DriftSignal", "population_stability_index"]
