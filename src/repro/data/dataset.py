"""Dataset containers."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import DatasetError
from repro.uarch.modes import Mode


@dataclasses.dataclass(frozen=True)
class GatingDataset:
    """Supervised gating data for one telemetry mode.

    Each row is one prediction opportunity: features are the normalised
    counter vector :math:`x_t` observed in ``mode``, the label is the
    ground-truth configuration :math:`y_{t+2}` for the interval two
    steps ahead (1 = gate cluster 2 / low-power meets the SLA).
    """

    x: np.ndarray  # (N, C)
    y: np.ndarray  # (N,)
    groups: np.ndarray  # (N,) application names
    workloads: np.ndarray  # (N,) workload names
    traces: np.ndarray  # (N,) trace names
    mode: Mode
    counter_ids: np.ndarray  # (C,)
    granularity: int  # instructions per prediction interval
    sla_floor: float

    def __post_init__(self) -> None:
        n = self.x.shape[0]
        for name in ("y", "groups", "workloads", "traces"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise DatasetError(
                    f"{name} has {arr.shape[0]} rows, expected {n}"
                )

    @property
    def n_samples(self) -> int:
        return int(self.x.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.x.shape[1])

    @property
    def positive_rate(self) -> float:
        """Fraction of gateable intervals (the gating opportunity rate)."""
        if self.n_samples == 0:
            raise DatasetError("empty dataset")
        return float(self.y.mean())

    @property
    def n_applications(self) -> int:
        return int(np.unique(self.groups).size)

    def subset(self, mask: np.ndarray) -> "GatingDataset":
        """Row subset sharing all metadata."""
        return dataclasses.replace(
            self,
            x=self.x[mask],
            y=self.y[mask],
            groups=self.groups[mask],
            workloads=self.workloads[mask],
            traces=self.traces[mask],
        )

    def for_applications(self, apps: list[str]) -> "GatingDataset":
        """Rows belonging to the named applications."""
        mask = np.isin(self.groups, apps)
        return self.subset(mask)


def _check_compatible(first: GatingDataset, ds: GatingDataset) -> None:
    """Metadata agreement required for row-wise combination."""
    if ds.mode is not first.mode:
        raise DatasetError("mode mismatch in concat")
    if ds.granularity != first.granularity:
        raise DatasetError("granularity mismatch in concat")
    if not np.array_equal(ds.counter_ids, first.counter_ids):
        raise DatasetError("counter set mismatch in concat")
    if ds.sla_floor != first.sla_floor:
        raise DatasetError("SLA mismatch in concat")


def concat_datasets(datasets: list[GatingDataset]) -> GatingDataset:
    """Concatenate row-wise; metadata must agree."""
    if not datasets:
        raise DatasetError("nothing to concatenate")
    first = datasets[0]
    for ds in datasets[1:]:
        _check_compatible(first, ds)
    return dataclasses.replace(
        first,
        x=np.concatenate([ds.x for ds in datasets]),
        y=np.concatenate([ds.y for ds in datasets]),
        groups=np.concatenate([ds.groups for ds in datasets]),
        workloads=np.concatenate([ds.workloads for ds in datasets]),
        traces=np.concatenate([ds.traces for ds in datasets]),
    )


class DatasetAssembler:
    """Streamed, bounded-RSS alternative to :func:`concat_datasets`.

    Sharded builds feed shards (or per-trace parts) in as they finish;
    numeric matrices land by slice-copy into geometrically grown
    buffers, so peak parent memory is roughly *final matrix + one
    shard* instead of *all parts + their concatenation* — and shm
    result views can be released shard by shard. The assembled dataset
    is bit-identical to ``concat_datasets`` over the same parts (the
    tier-1 suite asserts this).

    Name columns (``groups``/``workloads``/``traces``) are fixed-width
    unicode whose width is only known once every part has arrived, so
    they are accumulated and concatenated at :meth:`finish` — they are
    a few pointers per row, never the RSS driver.
    """

    def __init__(self) -> None:
        self._first: GatingDataset | None = None
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._n = 0
        self._names: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def _reserve(self, rows: int) -> None:
        need = self._n + rows
        if need <= self._x.shape[0]:
            return
        cap = max(need, self._x.shape[0] + (self._x.shape[0] >> 1))
        x = np.empty((cap, self._x.shape[1]), dtype=self._x.dtype)
        y = np.empty(cap, dtype=self._y.dtype)
        x[:self._n] = self._x[:self._n]
        y[:self._n] = self._y[:self._n]
        self._x, self._y = x, y

    def append(self, ds: GatingDataset) -> None:
        """Fold one part in; metadata must agree with the first part."""
        if self._first is None:
            self._first = ds
            self._x = np.empty((ds.x.shape[0], ds.x.shape[1]),
                               dtype=ds.x.dtype)
            self._y = np.empty(ds.y.shape[0], dtype=ds.y.dtype)
        else:
            _check_compatible(self._first, ds)
            if ds.x.dtype != self._x.dtype or ds.y.dtype != self._y.dtype:
                # concat_datasets would silently upcast here; refusing
                # keeps sharded and unsharded assembly bit-identical.
                raise DatasetError(
                    f"dtype mismatch in assembly: x {ds.x.dtype} vs "
                    f"{self._x.dtype}, y {ds.y.dtype} vs {self._y.dtype}"
                )
            if ds.x.shape[1] != self._x.shape[1]:
                raise DatasetError(
                    f"feature count mismatch in assembly: "
                    f"{ds.x.shape[1]} vs {self._x.shape[1]}"
                )
            self._reserve(ds.x.shape[0])
        n, rows = self._n, ds.x.shape[0]
        self._x[n:n + rows] = ds.x
        self._y[n:n + rows] = ds.y
        self._n = n + rows
        self._names.append((ds.groups, ds.workloads, ds.traces))

    @property
    def n_rows(self) -> int:
        return self._n

    def finish(self) -> GatingDataset:
        """The assembled dataset (buffers trimmed to the rows seen)."""
        if self._first is None:
            raise DatasetError("nothing to assemble")
        groups = np.concatenate([g for g, _, _ in self._names])
        workloads = np.concatenate([w for _, w, _ in self._names])
        traces = np.concatenate([t for _, _, t in self._names])
        return dataclasses.replace(
            self._first,
            x=self._x[:self._n],
            y=self._y[:self._n],
            groups=groups,
            workloads=workloads,
            traces=traces,
        )
