"""Dataset containers."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import DatasetError
from repro.uarch.modes import Mode


@dataclasses.dataclass(frozen=True)
class GatingDataset:
    """Supervised gating data for one telemetry mode.

    Each row is one prediction opportunity: features are the normalised
    counter vector :math:`x_t` observed in ``mode``, the label is the
    ground-truth configuration :math:`y_{t+2}` for the interval two
    steps ahead (1 = gate cluster 2 / low-power meets the SLA).
    """

    x: np.ndarray  # (N, C)
    y: np.ndarray  # (N,)
    groups: np.ndarray  # (N,) application names
    workloads: np.ndarray  # (N,) workload names
    traces: np.ndarray  # (N,) trace names
    mode: Mode
    counter_ids: np.ndarray  # (C,)
    granularity: int  # instructions per prediction interval
    sla_floor: float

    def __post_init__(self) -> None:
        n = self.x.shape[0]
        for name in ("y", "groups", "workloads", "traces"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise DatasetError(
                    f"{name} has {arr.shape[0]} rows, expected {n}"
                )

    @property
    def n_samples(self) -> int:
        return int(self.x.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.x.shape[1])

    @property
    def positive_rate(self) -> float:
        """Fraction of gateable intervals (the gating opportunity rate)."""
        if self.n_samples == 0:
            raise DatasetError("empty dataset")
        return float(self.y.mean())

    @property
    def n_applications(self) -> int:
        return int(np.unique(self.groups).size)

    def subset(self, mask: np.ndarray) -> "GatingDataset":
        """Row subset sharing all metadata."""
        return dataclasses.replace(
            self,
            x=self.x[mask],
            y=self.y[mask],
            groups=self.groups[mask],
            workloads=self.workloads[mask],
            traces=self.traces[mask],
        )

    def for_applications(self, apps: list[str]) -> "GatingDataset":
        """Rows belonging to the named applications."""
        mask = np.isin(self.groups, apps)
        return self.subset(mask)


def concat_datasets(datasets: list[GatingDataset]) -> GatingDataset:
    """Concatenate row-wise; metadata must agree."""
    if not datasets:
        raise DatasetError("nothing to concatenate")
    first = datasets[0]
    for ds in datasets[1:]:
        if ds.mode is not first.mode:
            raise DatasetError("mode mismatch in concat")
        if ds.granularity != first.granularity:
            raise DatasetError("granularity mismatch in concat")
        if not np.array_equal(ds.counter_ids, first.counter_ids):
            raise DatasetError("counter set mismatch in concat")
        if ds.sla_floor != first.sla_floor:
            raise DatasetError("SLA mismatch in concat")
    return dataclasses.replace(
        first,
        x=np.concatenate([ds.x for ds in datasets]),
        y=np.concatenate([ds.y for ds in datasets]),
        groups=np.concatenate([ds.groups for ds in datasets]),
        workloads=np.concatenate([ds.workloads for ds in datasets]),
        traces=np.concatenate([ds.traces for ds in datasets]),
    )
