"""Dataset builders.

Assemble supervised gating datasets from trace corpora exactly as the
paper does (Section 4.1): simulate each trace in both modes, snapshot
and cycle-normalise telemetry, coarsen to the prediction granularity,
and pair counters at interval ``t`` with the gating label at interval
``t + 2`` — the one-interval gap covers transmitting counters to the
microcontroller and computing the prediction (Figure 3).
"""

from __future__ import annotations

import functools
import pickle

import numpy as np

from repro import rng as rng_mod
from repro.config import BASE_INTERVAL_INSTRUCTIONS, DEFAULT_SLA, SLAConfig
from repro.config import batch_sim_enabled, exec_arena_enabled
from repro.config import exec_shard_size, experiment_scale
from repro.config import surrogate_enabled
from repro.core.labels import gating_labels
from repro.data.dataset import (
    DatasetAssembler,
    GatingDataset,
    concat_datasets,
)
from repro.errors import ArenaIntegrityError, DatasetError
from repro.exec.arena import TraceArena
from repro.exec.parallel import ParallelMap, default_parallel_map
from repro.exec.simcache import SimCache, default_simcache
from repro.exec.stats import EXEC_STATS
from repro.obs import tracer
from repro.telemetry.collector import TelemetryCollector, coarsen
from repro.uarch.modes import Mode
from repro.workloads.categories import hdtr_corpus
from repro.workloads.generator import ApplicationSpec, TraceSpec
from repro.workloads.spec2017 import spec2017_traces

#: Prediction horizon in intervals: predict for t+2 from counters at t.
PREDICTION_HORIZON = 2


def _catalog_token(collector: TelemetryCollector) -> str:
    """Stable fingerprint of the counter catalog (for cache keys)."""
    return collector.catalog_token()


def _sim_tier() -> str:
    """Simulator-tier token for cache keys.

    Decided by the config flag — not by per-pair gate outcomes — so
    keys are deterministic across backends, and artefacts built with
    the surrogate on can never shadow interval-tier truth (or vice
    versa).
    """
    return "surrogate" if surrogate_enabled() else "interval"


def _build_trace_part(trace: TraceSpec, mode: Mode,
                      counter_ids: np.ndarray, sla: SLAConfig,
                      collector: TelemetryCollector,
                      granularity_factor: int,
                      horizon: int) -> GatingDataset:
    """One trace's slice of the supervised dataset (parallel unit)."""
    if batch_sim_enabled():
        # Snapshot and labels each consult their own disk-cache tier
        # (and the simulator's LRU, prewarmed by the chunk's stacked
        # pass, on a miss) — a fully warm build never simulates.
        snap = collector.snapshot(trace, mode, counter_ids)
        labels = gating_labels(trace, sla, collector.model,
                               granularity_factor)
    else:
        results = collector.model.simulate_both(trace)
        snap = collector.snapshot(trace, mode, counter_ids,
                                  result=results[mode])
        labels = gating_labels(trace, sla, collector.model,
                               granularity_factor, results=results)
    if granularity_factor > 1:
        snap = coarsen(snap, granularity_factor)
    t_count = min(snap.n_intervals, labels.n_intervals)
    if t_count <= horizon:
        raise DatasetError(
            f"trace {trace.name} too short for horizon {horizon} at "
            f"granularity factor {granularity_factor}"
        )
    x = snap.normalized[:t_count - horizon]
    y = labels.labels[horizon:t_count]
    n = x.shape[0]
    return GatingDataset(
        x=x,
        y=y,
        groups=np.full(n, trace.app.name),
        workloads=np.full(n, trace.workload.name),
        traces=np.full(n, trace.name),
        mode=mode,
        counter_ids=counter_ids,
        granularity=(BASE_INTERVAL_INSTRUCTIONS * granularity_factor),
        sla_floor=sla.performance_floor,
    )


def _build_trace_chunk(traces: list[TraceSpec], part_fn, mode: Mode,
                       counter_ids: np.ndarray, sla: SLAConfig,
                       collector: TelemetryCollector,
                       granularity_factor: int) -> list[GatingDataset]:
    """Chunk unit of the batched build: stacked simulation, then parts.

    ``simulate_batch`` warms the model's LRU (and SimCache) with one
    stacked interval pass over every (trace, mode) pair of the chunk,
    so each subsequent per-trace part is pure assembly. Traces whose
    snapshot *and* labels are already on disk are skipped — a fully
    warm build reads those two small artefacts and never touches the
    simulator.
    """
    simcache = collector.model.simcache

    def _tkey(trace):
        return (trace.name, trace.seed, trace.n_intervals)

    if simcache is None or not batch_sim_enabled():
        needs_sim = {_tkey(trace) for trace in traces}
    else:
        machine = collector.model.machine
        token = collector.catalog_token()
        tier = _sim_tier()
        needs_sim = {
            _tkey(trace) for trace in traces
            if not (simcache.has(simcache.snapshot_key(
                        trace, mode, machine, counter_ids, token,
                        tier=tier))
                    and simcache.has(simcache.labels_key(
                        trace, sla, granularity_factor, machine,
                        tier=tier)))
        }
    # Prewarm in slices that fit the model's LRU (two entries per
    # trace — one per mode); a chunk larger than the LRU would evict
    # its own head before the per-trace assembly consumes it, silently
    # degrading every early trace to a scalar re-simulation.
    step = max(1, collector.model._cache_size // 2)
    parts = []
    for i in range(0, len(traces), step):
        sub = traces[i:i + step]
        sub_sim = [trace for trace in sub if _tkey(trace) in needs_sim]
        if sub_sim:
            collector.model.simulate_batch(sub_sim)
        parts.extend(part_fn(trace) for trace in sub)
    return parts


def _arena_build_chunk(handle: str, indices: list[int], *, mode: Mode,
                       counter_ids: np.ndarray, sla: SLAConfig,
                       granularity_factor: int,
                       horizon: int) -> list[GatingDataset]:
    """Worker-side build: attach to the arena, rebuild, assemble.

    Module-level so process pools can pickle it; the collector (which
    drags the interval model and counter catalog) and the traces ride
    in the arena, so the per-task payload is ``(handle, indices)``
    plus the small scalar knobs in this partial.
    """
    arena = TraceArena.attach(handle)
    collector = arena.object("collector")
    traces = [arena.trace(i) for i in indices]
    part_fn = functools.partial(_build_trace_part, mode=mode,
                                counter_ids=counter_ids, sla=sla,
                                collector=collector,
                                granularity_factor=granularity_factor,
                                horizon=horizon)
    return _build_trace_chunk(traces, part_fn=part_fn, mode=mode,
                              counter_ids=counter_ids, sla=sla,
                              collector=collector,
                              granularity_factor=granularity_factor)


def build_mode_dataset(traces: list[TraceSpec], mode: Mode,
                       counter_ids: list[int] | np.ndarray,
                       sla: SLAConfig = DEFAULT_SLA,
                       collector: TelemetryCollector | None = None,
                       granularity_factor: int = 1,
                       horizon: int = PREDICTION_HORIZON,
                       pmap: ParallelMap | None = None,
                       simcache: SimCache | None = None) -> GatingDataset:
    """Build the supervised dataset for one telemetry mode.

    Features are telemetry observed while running in ``mode``; two
    such datasets (one per mode) train the paper's two side-by-side
    models.

    Per-trace work fans out through ``pmap`` (serial by default) and
    the assembled matrices persist in ``simcache`` when one is
    attached (or ``REPRO_SIMCACHE_DIR`` is set), keyed by trace
    content, counter set, SLA, granularity and machine config — both
    paths are bit-identical to a serial, uncached build.

    When ``REPRO_EXEC_SHARD`` caps the number of traces in flight, the
    corpus streams shard-by-shard with bounded parent RSS (and
    shard-level cache resume); see :func:`_build_sharded`.
    """
    if not traces:
        raise DatasetError("no traces supplied")
    with tracer.span("build_dataset", mode=mode.value,
                     traces=len(traces)):
        return _build_mode_dataset(
            traces, mode, counter_ids, sla, collector,
            granularity_factor, horizon, pmap, simcache)


def _build_mode_dataset(traces, mode, counter_ids, sla, collector,
                        granularity_factor, horizon, pmap,
                        simcache) -> GatingDataset:
    collector = collector or TelemetryCollector()
    counter_ids = np.asarray(counter_ids, dtype=np.int64)
    simcache = simcache if simcache is not None else default_simcache()
    if simcache is None:
        # Fall back to the cache already attached to the simulator, so
        # a collector wired to a shared SimCache (the benchmark
        # fixtures) also persists its built datasets there.
        simcache = collector.model.simcache
    key = None
    if simcache is not None:
        key = simcache.dataset_key(
            traces, mode, counter_ids, sla, granularity_factor, horizon,
            collector.model.machine,
            catalog_token=_catalog_token(collector), tier=_sim_tier())
        cached = simcache.load_dataset(key)
        if cached is not None:
            return cached
    pmap = pmap if pmap is not None else default_parallel_map()
    shard = exec_shard_size()
    if shard is not None and len(traces) > shard:
        dataset = _build_sharded(traces, mode, counter_ids, sla,
                                 collector, granularity_factor, horizon,
                                 pmap, simcache, shard)
    else:
        dataset = concat_datasets(_build_parts(
            traces, mode, counter_ids, sla, collector,
            granularity_factor, horizon, pmap))
    if key is not None:
        simcache.store_dataset(key, dataset)
    return dataset


def _build_parts(traces, mode, counter_ids, sla, collector,
                 granularity_factor, horizon, pmap,
                 ) -> list[GatingDataset]:
    """Fan the per-trace builds of one (sub)corpus out through ``pmap``."""
    part_fn = functools.partial(_build_trace_part, mode=mode,
                                counter_ids=counter_ids, sla=sla,
                                collector=collector,
                                granularity_factor=granularity_factor,
                                horizon=horizon)
    if not batch_sim_enabled():
        return pmap.map(part_fn, traces, stage="build_dataset")
    # Whole chunks reach each worker, so the interval simulations
    # of a chunk run as one stacked batch pass before the per-trace
    # assembly (which then hits the warm LRU). Process dispatch
    # ships the corpus and collector once via the trace arena.
    arena = None
    if (exec_arena_enabled() and len(traces) > 1
            and pmap.uses_processes(len(traces), "build_dataset")):
        try:
            arena = TraceArena.build(
                traces, objects={"collector": collector})
        except (pickle.PicklingError, AttributeError, TypeError):
            EXEC_STATS.incr("arena.build_fallback")
    if arena is not None:
        try:
            return pmap.map_chunks(
                functools.partial(
                    _arena_build_chunk, arena.handle, mode=mode,
                    counter_ids=counter_ids, sla=sla,
                    granularity_factor=granularity_factor,
                    horizon=horizon),
                range(len(traces)), stage="build_dataset")
        except ArenaIntegrityError:
            # Corrupt/injected-corrupt segment: fall back to
            # pickled dispatch below — bit-identical, just slower.
            EXEC_STATS.incr("arena.attach_fallback")
        finally:
            arena.close()
    return pmap.map_chunks(
        functools.partial(_build_trace_chunk, part_fn=part_fn,
                          mode=mode, counter_ids=counter_ids,
                          sla=sla, collector=collector,
                          granularity_factor=granularity_factor),
        traces, stage="build_dataset")


def _build_sharded(traces, mode, counter_ids, sla, collector,
                   granularity_factor, horizon, pmap, simcache,
                   shard: int) -> GatingDataset:
    """Stream the corpus shard-by-shard with bounded parent RSS.

    Each shard of ``shard`` traces is built (and its result views
    released) before the next begins; rows land in a
    :class:`~repro.data.dataset.DatasetAssembler` by slice-copy, so
    peak parent memory is roughly the final matrix plus one shard of
    parts instead of every pickled part at once. Per-trace assembly is
    independent of grouping, so the result is bit-identical to the
    unsharded build. When a SimCache is attached, each shard is also
    cached under its own key, giving interrupted million-trace builds
    shard-level resume.
    """
    assembler = DatasetAssembler()
    n_shards = -(-len(traces) // shard)
    for si in range(n_shards):
        sub = traces[si * shard:(si + 1) * shard]
        with tracer.span("build_dataset.shard", shard=si,
                         shards=n_shards, traces=len(sub)):
            shard_key = None
            if simcache is not None:
                shard_key = simcache.dataset_key(
                    sub, mode, counter_ids, sla, granularity_factor,
                    horizon, collector.model.machine,
                    catalog_token=_catalog_token(collector),
                    tier=_sim_tier())
                cached = simcache.load_dataset(shard_key)
                if cached is not None:
                    EXEC_STATS.incr("build_dataset.shard_cache_hits")
                    assembler.append(cached)
                    continue
            parts = _build_parts(sub, mode, counter_ids, sla, collector,
                                 granularity_factor, horizon, pmap)
            if shard_key is not None:
                shard_ds = concat_datasets(parts)
                simcache.store_dataset(shard_key, shard_ds)
                assembler.append(shard_ds)
            else:
                for part in parts:
                    assembler.append(part)
        EXEC_STATS.incr("build_dataset.shards")
    return assembler.finish()


def dataset_from_traces(traces: list[TraceSpec],
                        counter_ids: list[int] | np.ndarray,
                        sla: SLAConfig = DEFAULT_SLA,
                        collector: TelemetryCollector | None = None,
                        granularity_factor: int = 1,
                        horizon: int = PREDICTION_HORIZON,
                        pmap: ParallelMap | None = None,
                        simcache: SimCache | None = None,
                        ) -> dict[Mode, GatingDataset]:
    """Both per-mode datasets for one trace corpus."""
    collector = collector or TelemetryCollector()
    return {
        mode: build_mode_dataset(traces, mode, counter_ids, sla,
                                 collector, granularity_factor, horizon,
                                 pmap=pmap, simcache=simcache)
        for mode in Mode
    }


def hdtr_traces(seed: int,
                apps: list[ApplicationSpec] | None = None,
                workloads_per_app: int | None = None,
                intervals_per_trace: int | None = None,
                ) -> list[TraceSpec]:
    """The scaled HDTR trace corpus.

    The paper's HDTR has ~4.5 traces per application, 5M instructions
    each; we default to a few workloads per app, a couple hundred
    10k-instruction intervals each, scaled by ``REPRO_SCALE``.
    """
    scale = experiment_scale()
    if apps is None:
        apps = hdtr_corpus(seed)
    if workloads_per_app is None:
        workloads_per_app = max(2, int(round(3 * scale)))
    if intervals_per_trace is None:
        intervals_per_trace = max(60, int(round(160 * scale)))
    traces: list[TraceSpec] = []
    for app in apps:
        for input_id in range(workloads_per_app):
            traces.append(app.workload(input_id).trace(
                intervals_per_trace, trace_id=0))
    return traces


def build_hdtr_datasets(seed: int, counter_ids: list[int] | np.ndarray,
                        sla: SLAConfig = DEFAULT_SLA,
                        granularity_factor: int = 1,
                        collector: TelemetryCollector | None = None,
                        traces: list[TraceSpec] | None = None,
                        pmap: ParallelMap | None = None,
                        simcache: SimCache | None = None,
                        ) -> dict[Mode, GatingDataset]:
    """Per-mode training datasets over the scaled HDTR corpus."""
    traces = traces if traces is not None else hdtr_traces(seed)
    return dataset_from_traces(traces, counter_ids, sla, collector,
                               granularity_factor, pmap=pmap,
                               simcache=simcache)


def build_spec_datasets(seed: int, counter_ids: list[int] | np.ndarray,
                        sla: SLAConfig = DEFAULT_SLA,
                        granularity_factor: int = 1,
                        collector: TelemetryCollector | None = None,
                        traces: list[TraceSpec] | None = None,
                        pmap: ParallelMap | None = None,
                        simcache: SimCache | None = None,
                        ) -> dict[Mode, GatingDataset]:
    """Per-mode datasets over the held-out SPEC2017-like suite."""
    traces = traces if traces is not None else spec2017_traces(
        rng_mod.derive_seed(seed, "spec-test"))
    return dataset_from_traces(traces, counter_ids, sla, collector,
                               granularity_factor, pmap=pmap,
                               simcache=simcache)
