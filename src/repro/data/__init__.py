"""Dataset construction (Section 4.1).

Builders simulate traces in both cluster configurations, snapshot
telemetry every 10k instructions, normalise by cycles, compute ground
truth gating labels two intervals ahead (Figure 3), and assemble
per-mode training matrices with application/workload group annotations
for per-application cross validation.
"""

from repro.data.dataset import GatingDataset, concat_datasets
from repro.data.builders import (
    build_hdtr_datasets,
    build_mode_dataset,
    build_spec_datasets,
    dataset_from_traces,
)

__all__ = [
    "GatingDataset",
    "concat_datasets",
    "build_hdtr_datasets",
    "build_mode_dataset",
    "build_spec_datasets",
    "dataset_from_traces",
]
