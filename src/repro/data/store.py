"""On-disk dataset caching.

Experiment harnesses rebuild the same scaled HDTR/SPEC datasets in
every process; this cache persists built
:class:`~repro.data.dataset.GatingDataset` objects as ``.npz`` files
keyed by a content string (builder parameters + seed), so repeated
benchmark runs skip simulation.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from repro.data.dataset import GatingDataset
from repro.errors import DatasetError
from repro.uarch.modes import Mode

#: Environment variable overriding the cache directory.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def cache_dir() -> str:
    """The dataset cache directory (created on demand)."""
    path = os.environ.get(CACHE_ENV_VAR)
    if path is None:
        path = os.path.join(os.path.expanduser("~"), ".cache",
                            "repro-datasets")
    os.makedirs(path, exist_ok=True)
    return path


def _path_for(key: str) -> str:
    digest = hashlib.sha256(key.encode()).hexdigest()[:24]
    return os.path.join(cache_dir(), f"{digest}.npz")


def save_dataset(key: str, dataset: GatingDataset) -> str:
    """Persist a dataset under a content key; returns the file path."""
    path = _path_for(key)
    np.savez_compressed(
        path,
        x=dataset.x,
        y=dataset.y,
        groups=dataset.groups,
        workloads=dataset.workloads,
        traces=dataset.traces,
        counter_ids=dataset.counter_ids,
        mode=np.array([dataset.mode.value]),
        granularity=np.array([dataset.granularity]),
        sla_floor=np.array([dataset.sla_floor]),
        key=np.array([key]),
    )
    return path


def load_dataset(key: str) -> GatingDataset | None:
    """Load a cached dataset, or None on miss/corruption."""
    path = _path_for(key)
    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            if str(data["key"][0]) != key:
                return None
            return GatingDataset(
                x=data["x"],
                y=data["y"],
                groups=data["groups"],
                workloads=data["workloads"],
                traces=data["traces"],
                mode=Mode(str(data["mode"][0])),
                counter_ids=data["counter_ids"],
                granularity=int(data["granularity"][0]),
                sla_floor=float(data["sla_floor"][0]),
            )
    except (OSError, KeyError, ValueError, DatasetError):
        return None


def cached_build(key: str, builder) -> GatingDataset:
    """Load a dataset by key, building and persisting on miss."""
    cached = load_dataset(key)
    if cached is not None:
        return cached
    dataset = builder()
    save_dataset(key, dataset)
    return dataset


def clear_cache() -> int:
    """Remove every cached dataset; returns the number deleted."""
    removed = 0
    root = cache_dir()
    for name in os.listdir(root):
        if name.endswith(".npz"):
            os.remove(os.path.join(root, name))
            removed += 1
    return removed
