"""``repro.obs`` — zero-dependency observability.

Three pieces, all stdlib-only and importable from anywhere in the
package (``repro.obs`` never imports ``repro.exec``; the execution
engine imports *us*):

* :mod:`repro.obs.metrics` — the process-wide :data:`METRICS`
  registry (counters, gauges, histograms, stage timings). Successor
  of the old ``repro.exec.stats.ExecStats``; worker-side observations
  are shipped back through chunk-result sidecars and merged here.
* :mod:`repro.obs.tracer` — hierarchical :func:`trace`/:func:`span`
  context managers writing a structured JSON trace file per run,
  gated by ``REPRO_TRACE`` with a no-op singleton fast path when off.
* :mod:`repro.obs.report` — :func:`render_report`, the ``--obs-report``
  text (per-stage wall time, items/s, cache hit ratios, payload
  bytes, resilience events, inference batch shapes).
* :mod:`repro.obs.export` — :func:`to_chrome_trace`, converting the
  tracer's JSON into Chrome ``about:tracing`` / Perfetto format
  (``repro obs export-trace`` on the CLI).
"""

from repro.obs import tracer
from repro.obs.export import from_chrome_trace, to_chrome_trace
from repro.obs.metrics import METRICS, HistogramStat, Metrics, StageStat
from repro.obs.report import render_report
from repro.obs.tracer import (
    DEFAULT_TRACE_PATH,
    OBS_SCHEMA_VERSION,
    Span,
    span,
    trace,
    validate_trace,
)

__all__ = [
    "DEFAULT_TRACE_PATH",
    "METRICS",
    "OBS_SCHEMA_VERSION",
    "HistogramStat",
    "Metrics",
    "Span",
    "StageStat",
    "from_chrome_trace",
    "render_report",
    "span",
    "to_chrome_trace",
    "trace",
    "tracer",
    "validate_trace",
]
