"""The ``--obs-report`` renderer: one profiling story per run.

Where :meth:`repro.obs.metrics.Metrics.report` dumps every raw
instrument (the legacy ``--exec-report`` text), this module renders
the *derived* profile an operator actually reads: per-stage wall time
with throughput (items/s), cache effectiveness, arena payload
economics, worker-pool health, resilience events and model-inference
batch shapes — including everything merged back from process-pool
workers (counters that before PR 5 silently died with the worker).
"""

from __future__ import annotations

from repro.obs import tracer
from repro.obs.metrics import METRICS, Metrics


def render_report(metrics: Metrics | None = None) -> str:
    """Human-readable observability report from a metrics registry."""
    metrics = metrics if metrics is not None else METRICS
    snap = metrics.snapshot()
    lines = ["=== observability report ==="]

    stages = snap["stages"]
    if stages:
        lines.append("per-stage profile:")
        lines.append(f"  {'stage':<26s} {'calls':>6s} {'wall s':>9s} "
                     f"{'items/s':>10s} {'util':>6s}")
        for name, s in stages.items():
            items = snap["counters"].get(f"{name}.items", 0)
            rate = (f"{items / s['wall_s']:>10.1f}"
                    if items and s["wall_s"] > 0 else f"{'-':>10s}")
            lines.append(
                f"  {name:<26s} {s['calls']:>6d} {s['wall_s']:>9.3f} "
                f"{rate} {s['utilization'] * 100:>5.0f}%"
            )

    cache_lines = []
    for prefix, label in (("simcache", "SimCache"),
                          ("interval_lru", "interval LRU"),
                          ("arena.attach", "arena attach")):
        rate = metrics.hit_rate(prefix)
        if rate is not None:
            hits = snap["counters"].get(f"{prefix}.hit", 0)
            misses = snap["counters"].get(f"{prefix}.miss", 0)
            cache_lines.append(
                f"  {label:<26s} {rate * 100:5.1f}% "
                f"({hits} hits / {misses} misses)")
    if cache_lines:
        lines.append("cache hit ratios:")
        lines.extend(cache_lines)

    payload_lines = []
    for name in snap["counters"]:
        if not name.endswith(".payload_tasks"):
            continue
        stage = name[:-len(".payload_tasks")]
        sampled = snap["counters"][name]
        total = snap["counters"].get(f"{stage}.payload_tasks_total", sampled)
        nbytes = snap["counters"].get(f"{stage}.payload_bytes", 0)
        if sampled:
            payload_lines.append(
                f"  {stage:<26s} {nbytes / sampled:>12.0f} B/task "
                f"({total} tasks)")
    if payload_lines:
        lines.append("arena / task payloads:")
        lines.extend(payload_lines)
    arena_bytes = snap["counters"].get("arena.bytes")
    if arena_bytes:
        builds = snap["counters"].get("arena.builds", 1)
        lines.append(f"  {'arena segments':<26s} {arena_bytes:>12d} B "
                     f"({builds} builds)")

    pool_lines = []
    for counter, label in (("parallel.pool_create", "created"),
                           ("parallel.pool_reuse", "reused"),
                           ("parallel.pool_close", "closed")):
        value = snap["counters"].get(counter)
        if value:
            pool_lines.append(f"{label} {value}")
    if pool_lines or "parallel.pools_open" in snap["gauges"]:
        open_now = snap["gauges"].get("parallel.pools_open", 0)
        pool_lines.append(f"open now {open_now:g}")
        lines.append(f"worker pools: {', '.join(pool_lines)}")

    resilience = metrics.resilience()
    if resilience:
        lines.append("resilience events (incl. merged from workers):")
        for name, value in resilience.items():
            lines.append(f"  {name:<30s} {value}")

    requests = snap["counters"].get("serve.requests", 0)
    if requests:
        batches = snap["counters"].get("serve.batches", 0)
        shed = snap["counters"].get("serve.shed", 0)
        full = snap["counters"].get("serve.flush_full", 0)
        wait = snap["counters"].get("serve.flush_wait", 0)
        lines.append(
            f"serving: {requests} requests, {batches} batches "
            f"(flush: {full} full / {wait} timed), {shed} shed")
        latency = snap["histograms"].get("serve.queue_latency_s")
        if latency and latency["count"]:
            lines.append(
                f"  {'request latency':<26s} mean="
                f"{latency['mean'] * 1e3:.2f}ms "
                f"max={latency['max'] * 1e3:.2f}ms "
                f"(n={latency['count']})")
        serve_resilience = []
        for counter, label in (
                ("serve.watchdog_trips", "watchdog trips"),
                ("serve.batcher_restarts", "batcher restarts"),
                ("serve.breaker_trips", "breaker trips"),
                ("serve.breaker_shed", "breaker shed"),
                ("serve.serial_requests", "serial degrades"),
                ("serve.dedup_hits", "dedup hits"),
                ("serve.stale_batches_discarded", "stale discards"),
                ("serve.checkpoint_loads", "checkpoint loads"),
                ("serve.checkpoint_saves", "checkpoint saves"),
                ("serve.checkpoint_rejected", "checkpoint rejects")):
            value = snap["counters"].get(counter)
            if value:
                serve_resilience.append(f"{label} {value}")
        if serve_resilience:
            lines.append(
                f"  serve resilience: {', '.join(serve_resilience)}")
        legacy = snap["counters"].get("serve.legacy_frames")
        if legacy:
            lines.append(f"  legacy (schema-1) frames: {legacy}")

    online = []
    for counter, label in (
            ("online.samples", "samples"),
            ("online.drift_checks", "drift checks"),
            ("online.drift_signals", "drift signals"),
            ("online.retrains", "retrains"),
            ("online.promotions", "promotions"),
            ("online.rejections", "rejections"),
            ("online.swaps", "swaps"),
            ("online.learner_errors", "learner errors")):
        value = snap["counters"].get(counter)
        if value:
            online.append(f"{label} {value}")
    if online:
        lines.append(f"continual adaptation: {', '.join(online)}")

    if snap["histograms"]:
        lines.append("batch shapes:")
        for name, h in snap["histograms"].items():
            lines.append(
                f"  {name:<26s} n={h['count']} mean={h['mean']:.1f} "
                f"min={h['min']:g} max={h['max']:g}")

    merged = snap["counters"].get("obs.worker_merges", 0)
    if merged:
        lines.append(f"worker metric deltas merged: {merged}")

    path = tracer.last_trace_path()
    if path:
        lines.append(f"trace file: {path}")

    if len(lines) == 1:
        lines.append("(nothing recorded)")
    return "\n".join(lines)
