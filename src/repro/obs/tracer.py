"""Hierarchical span tracer with a near-zero disabled fast path.

Two context managers:

* :func:`trace` opens a *root* span for one run (the CLI wraps each
  command in ``trace("repro.<command>")``) and, on exit, writes the
  structured JSON trace file described below.
* :func:`span` opens a nested span anywhere inside the run. Spans nest
  per thread (a thread-local stack provides the parent link) and are
  process-aware: spans recorded inside a process-pool worker are
  shipped back through the chunk-result sidecar and absorbed into the
  parent's buffer with their worker pid/ids intact.

Enablement is controlled by ``REPRO_TRACE`` (see
:class:`repro.config.ExecConfig`): unset or ``0`` disables tracing,
``1`` enables it with the default output path
(:data:`DEFAULT_TRACE_PATH`), and any other value enables it and names
the output file. When disabled, :func:`span` returns a shared no-op
singleton — no span object, no dict, no timestamp is allocated — so
instrumented hot paths cost one attribute load and one branch.

Trace-file schema (``schema`` = :data:`OBS_SCHEMA_VERSION`)::

    {
      "schema": 1,
      "run": "<root span name>",
      "pid": 1234,
      "started_unix": 1754000000.0,
      "duration_s": 12.5,
      "dropped_spans": 0,
      "sampled_spans": 0,
      "sample_rate": 8,
      "spans": [
        {"name": "exec.map", "id": "1234:7", "parent": "1234:1",
         "pid": 1234, "tid": 140.., "start_s": 0.002, "dur_s": 0.4,
         "attrs": {"stage": "evaluate", "items": 40}},
        ...
      ],
      "metrics": { ... Metrics.snapshot() ... }
    }

``id`` is ``"<pid>:<sequence>"`` so spans merged from workers never
collide with the parent's; ``start_s`` is relative to the process's
tracer epoch; ``parent`` is ``null`` for root/top-level spans.
:func:`validate_trace` checks a document against this schema and is
what CI's ``benchmarks/obs_smoke.py`` asserts with.

Tracing never changes results: spans observe timestamps only, consume
no randomness and reorder nothing, so a traced run is bit-identical to
an untraced one (CI runs tier-1 under ``REPRO_TRACE=1`` to prove it).
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time

from repro.obs.metrics import METRICS

#: Version stamped into (and required of) every trace document.
OBS_SCHEMA_VERSION = 1

#: Environment variable gating the tracer (kept in sync with
#: :data:`repro.config.TRACE_ENV_VAR`; duplicated literally so the
#: tracer has zero repro imports beyond :mod:`repro.obs.metrics`).
TRACE_ENV_VAR = "REPRO_TRACE"

#: Where ``REPRO_TRACE=1`` writes the trace when no path is given.
DEFAULT_TRACE_PATH = "repro_trace.json"

#: Span-buffer hard bound; spans past it are counted, not stored, so
#: an instrumented long sweep cannot grow memory without bound. Once
#: the buffer is half full, deterministic 1-in-N sampling kicks in
#: (``REPRO_TRACE_SAMPLE``) so long sweeps keep a representative tail
#: instead of a truncated head.
MAX_SPANS = 200_000

#: Environment variable selecting the 1-in-N sampling rate applied
#: above the half-full threshold (kept in sync with
#: :data:`repro.config.TRACE_SAMPLE_ENV_VAR`; duplicated literally so
#: the tracer keeps zero repro imports). ``1`` disables sampling and
#: restores the pure drop-at-cap behaviour.
TRACE_SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"

#: Default sampling rate (keep every 8th span above the threshold).
DEFAULT_SAMPLE_RATE = 8

#: Keys every span record must carry (schema validation).
_SPAN_KEYS = ("name", "id", "parent", "pid", "tid", "start_s", "dur_s",
              "attrs")

_LOCK = threading.Lock()
_LOCAL = threading.local()

#: Process epoch all ``start_s`` values are relative to.
_EPOCH = time.perf_counter()

_SPANS: list[dict] = []
_DROPPED = 0
_SAMPLE_SEEN = 0
_SAMPLED_OUT = 0
_NEXT_ID = 0
_LAST_TRACE_PATH: str | None = None


def _env_spec() -> str | None:
    """Trace destination from the environment, or None when disabled."""
    raw = os.environ.get(TRACE_ENV_VAR)
    if raw is None or raw in ("", "0"):
        return None
    return DEFAULT_TRACE_PATH if raw == "1" else raw


def _env_sample_rate() -> int:
    """Sampling rate from the environment (lenient: bad values fall
    back to the default here; :meth:`repro.config.ExecConfig.from_env`
    is where a malformed ``REPRO_TRACE_SAMPLE`` raises)."""
    raw = os.environ.get(TRACE_SAMPLE_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_SAMPLE_RATE
    try:
        rate = int(raw)
    except ValueError:
        return DEFAULT_SAMPLE_RATE
    return rate if rate >= 1 else DEFAULT_SAMPLE_RATE


#: Cached sampling rate; refreshed alongside ``_ENABLED``.
_SAMPLE_RATE: int = _env_sample_rate()


#: The single branch every :func:`span` call tests. Initialised from
#: the environment at import (so spawned/forked pool workers inherit
#: the parent's setting), refreshed by :func:`trace`, :func:`enable`
#: and :func:`disable`.
_ENABLED: bool = _env_spec() is not None


class _NullSpan:
    """The disabled-mode span: one shared, immutable, do-nothing object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; records itself into the buffer on ``__exit__``."""

    __slots__ = ("name", "attrs", "_id", "_parent", "_start")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._id = _new_id()
        self._parent = None
        self._start = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes after the span opened."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        self._parent = stack[-1] if stack else None
        stack.append(self._id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        stack = _stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        _record({
            "name": self.name,
            "id": self._id,
            "parent": self._parent,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "start_s": self._start - _EPOCH,
            "dur_s": end - self._start,
            "attrs": self.attrs,
        })
        return False


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def _new_id() -> str:
    global _NEXT_ID
    with _LOCK:
        _NEXT_ID += 1
        return f"{os.getpid()}:{_NEXT_ID}"


def _admit(record: dict) -> None:
    """Buffer one span record; caller holds ``_LOCK``.

    Admission policy: store everything while the buffer is under half
    of :data:`MAX_SPANS`; above that, keep every Nth span
    (``REPRO_TRACE_SAMPLE``, counter-based so it is deterministic and
    consumes no randomness) and count the rest under
    ``sampled_spans``; at the hard cap, count under ``dropped_spans``.
    Sampling selects which *observations are stored*, never what runs,
    so traced results stay bit-identical to untraced ones.
    """
    global _DROPPED, _SAMPLE_SEEN, _SAMPLED_OUT
    if len(_SPANS) >= MAX_SPANS:
        _DROPPED += 1
        return
    if _SAMPLE_RATE > 1 and len(_SPANS) >= MAX_SPANS // 2:
        _SAMPLE_SEEN += 1
        if _SAMPLE_SEEN % _SAMPLE_RATE != 0:
            _SAMPLED_OUT += 1
            return
    _SPANS.append(record)


def _record(record: dict) -> None:
    with _LOCK:
        _admit(record)


def span(name: str, **attrs):
    """Open a nested span; no-op singleton when tracing is disabled."""
    if not _ENABLED:
        return _NULL_SPAN
    return Span(name, attrs)


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _ENABLED


def enable(path: str | None = None) -> None:
    """Turn the tracer on programmatically (tests, benchmarks)."""
    global _ENABLED, _PATH_OVERRIDE
    _ENABLED = True
    _PATH_OVERRIDE = path


def disable() -> None:
    """Turn the tracer off and drop the buffered spans."""
    global _ENABLED, _DROPPED, _SAMPLE_SEEN, _SAMPLED_OUT
    global _PATH_OVERRIDE
    _ENABLED = False
    _PATH_OVERRIDE = None
    with _LOCK:
        _SPANS.clear()
        _DROPPED = 0
        _SAMPLE_SEEN = 0
        _SAMPLED_OUT = 0


_PATH_OVERRIDE: str | None = None


def refresh() -> None:
    """Re-read ``REPRO_TRACE`` / ``REPRO_TRACE_SAMPLE``
    (monkeypatched environments, workers)."""
    global _ENABLED, _SAMPLE_RATE
    if _PATH_OVERRIDE is None:
        _ENABLED = _env_spec() is not None
    _SAMPLE_RATE = _env_sample_rate()


@contextlib.contextmanager
def trace(name: str, path: str | None = None):
    """Root span for one run; writes the trace file on exit.

    Re-reads ``REPRO_TRACE`` on entry, so setting the variable right
    before a run (CLI, tests) takes effect without an explicit
    :func:`enable`. Disabled, it yields the no-op span and writes
    nothing. Spans recorded before this trace opened (e.g. by an
    earlier trace in the same process) are not re-exported: the
    document contains exactly the spans recorded during this block.
    """
    refresh()
    if not _ENABLED:
        yield _NULL_SPAN
        return
    with _LOCK:
        first = len(_SPANS)
    started_unix = time.time()
    t0 = time.perf_counter()
    root = span(name)
    try:
        with root:
            yield root
    finally:
        out = path or _PATH_OVERRIDE or _env_spec() or DEFAULT_TRACE_PATH
        _write(out, name, started_unix, time.perf_counter() - t0, first)


def _write(path: str, run: str, started_unix: float, duration_s: float,
           first: int) -> str:
    global _LAST_TRACE_PATH
    with _LOCK:
        spans = list(_SPANS[first:])
        dropped = _DROPPED
        sampled = _SAMPLED_OUT
    doc = {
        "schema": OBS_SCHEMA_VERSION,
        "run": run,
        "pid": os.getpid(),
        "started_unix": started_unix,
        "duration_s": duration_s,
        "dropped_spans": dropped,
        "sampled_spans": sampled,
        "sample_rate": _SAMPLE_RATE,
        "spans": spans,
        "metrics": METRICS.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, default=str)
    _LAST_TRACE_PATH = path
    return path


def last_trace_path() -> str | None:
    """Path of the most recently written trace file, if any."""
    return _LAST_TRACE_PATH


# ---------------------------------------------------------------------
# Worker-side export (process-pool sidecar).
# ---------------------------------------------------------------------
def mark() -> int:
    """Checkpoint the span buffer for a later :func:`drain_since`."""
    with _LOCK:
        return len(_SPANS)


def drain_since(mark_: int) -> list[dict]:
    """Spans recorded since ``mark_`` (worker-side sidecar payload)."""
    with _LOCK:
        return list(_SPANS[mark_:])


def drain_reset(mark_: int) -> list[dict]:
    """Like :func:`drain_since`, but also truncates the buffer back to
    ``mark_`` — persistent-pool workers call this once per chunk so
    already-shipped spans never accumulate (or ship twice). The id
    counter is untouched, keeping worker span ids unique for the life
    of the worker."""
    with _LOCK:
        out = list(_SPANS[mark_:])
        del _SPANS[mark_:]
        return out


def absorb(spans: list[dict]) -> None:
    """Fold worker spans into this process's buffer (parent side).

    Worker spans pass through the same admission policy as local ones
    (:func:`_admit`), so sampling and the hard cap treat a span the
    same whichever process recorded it.
    """
    if not spans or not _ENABLED:
        return
    with _LOCK:
        for record in spans:
            _admit(record)


def reset() -> None:
    """Clear the span buffer and id counter (tests)."""
    global _DROPPED, _SAMPLE_SEEN, _SAMPLED_OUT
    global _NEXT_ID, _LAST_TRACE_PATH
    with _LOCK:
        _SPANS.clear()
        _DROPPED = 0
        _SAMPLE_SEEN = 0
        _SAMPLED_OUT = 0
        _NEXT_ID = 0
        _LAST_TRACE_PATH = None


def spans_snapshot() -> list[dict]:
    """Copy of the current span buffer (tests, reports)."""
    with _LOCK:
        return list(_SPANS)


def sample_stats() -> dict:
    """Admission counters: dropped, sampled-out and effective rate."""
    with _LOCK:
        return {
            "dropped": _DROPPED,
            "sampled_out": _SAMPLED_OUT,
            "sample_rate": _SAMPLE_RATE,
        }


# ---------------------------------------------------------------------
# Schema validation.
# ---------------------------------------------------------------------
def validate_trace(doc: dict) -> list[str]:
    """Check a trace document against the schema; [] means valid."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not an object"]
    if doc.get("schema") != OBS_SCHEMA_VERSION:
        problems.append(
            f"schema is {doc.get('schema')!r}, "
            f"expected {OBS_SCHEMA_VERSION}")
    for key, kind in (("run", str), ("pid", int),
                      ("started_unix", (int, float)),
                      ("duration_s", (int, float)),
                      ("dropped_spans", int),
                      ("spans", list), ("metrics", dict)):
        if not isinstance(doc.get(key), kind):
            problems.append(f"missing or mistyped top-level key {key!r}")
    for key in ("sampled_spans", "sample_rate"):
        # Optional (added with span sampling); typed when present.
        if key in doc and not isinstance(doc[key], int):
            problems.append(f"mistyped optional top-level key {key!r}")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        return problems
    ids = set()
    for i, record in enumerate(spans):
        if not isinstance(record, dict):
            problems.append(f"span {i} is not an object")
            continue
        for key in _SPAN_KEYS:
            if key not in record:
                problems.append(f"span {i} is missing {key!r}")
        if not isinstance(record.get("name"), str):
            problems.append(f"span {i} name is not a string")
        for key in ("start_s", "dur_s"):
            value = record.get(key)
            if not isinstance(value, (int, float)):
                problems.append(f"span {i} {key} is not numeric")
            elif key == "dur_s" and value < 0:
                problems.append(f"span {i} has negative duration")
        if not isinstance(record.get("attrs"), dict):
            problems.append(f"span {i} attrs is not an object")
        if record.get("id") is not None:
            ids.add(record["id"])
    for i, record in enumerate(spans):
        if not isinstance(record, dict):
            continue
        parent = record.get("parent")
        if parent is not None and parent not in ids:
            problems.append(
                f"span {i} parent {parent!r} does not resolve")
    return problems
