"""Trace export: obs schema-v1 documents -> Chrome ``about:tracing``.

The tracer's native JSON (see :mod:`repro.obs.tracer`) is built for
programmatic assertions; browsers and `Perfetto <https://ui.perfetto.dev>`_
speak the Chrome Trace Event format instead. :func:`to_chrome_trace`
converts losslessly between the two:

* every span becomes one complete duration event (``"ph": "X"``) with
  microsecond ``ts``/``dur`` relative to the trace epoch;
* span ``attrs`` ride along under ``args`` untouched, plus the span's
  native ``id``/``parent`` so the original hierarchy (which Chrome
  infers only from timestamps) survives the round trip;
* per-process/thread metadata events (``"ph": "M"``) name each track
  after the run, so worker-pool processes are distinguishable.

The converter is pure (dict in, dict out); the CLI command
``repro obs export-trace`` wraps it with file I/O and validation.
"""

from __future__ import annotations

import json

from repro.errors import DatasetError
from repro.obs.tracer import validate_trace


def to_chrome_trace(doc: dict) -> dict:
    """Convert a schema-v1 trace document to Chrome trace-event JSON.

    Raises :class:`~repro.errors.DatasetError` when ``doc`` fails
    schema validation, naming every violation.
    """
    problems = validate_trace(doc)
    if problems:
        raise DatasetError(
            "not a valid obs trace document: " + "; ".join(problems)
        )
    events: list[dict] = []
    seen_tracks: set[tuple[int, int]] = set()
    for sp in doc["spans"]:
        track = (sp["pid"], sp["tid"])
        if track not in seen_tracks:
            seen_tracks.add(track)
            label = doc["run"] if sp["pid"] == doc["pid"] \
                else f"{doc['run']} worker"
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": sp["pid"],
                "tid": sp["tid"],
                "args": {"name": label},
            })
        args = dict(sp["attrs"])
        args["span_id"] = sp["id"]
        if sp["parent"] is not None:
            args["span_parent"] = sp["parent"]
        events.append({
            "ph": "X",
            "name": sp["name"],
            "cat": "repro",
            "pid": sp["pid"],
            "tid": sp["tid"],
            "ts": sp["start_s"] * 1e6,
            "dur": sp["dur_s"] * 1e6,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run": doc["run"],
            "schema": doc["schema"],
            "started_unix": doc["started_unix"],
            "duration_s": doc["duration_s"],
            "dropped_spans": doc["dropped_spans"],
            "sampled_spans": doc["sampled_spans"],
        },
    }


def from_chrome_trace(chrome: dict) -> list[dict]:
    """Recover span records from :func:`to_chrome_trace` output.

    Inverse of the span-event mapping (metadata events are skipped);
    used by the round-trip test to prove the conversion is lossless.
    """
    spans = []
    for event in chrome.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event["args"])
        span_id = args.pop("span_id")
        parent = args.pop("span_parent", None)
        spans.append({
            "name": event["name"],
            "id": span_id,
            "parent": parent,
            "pid": event["pid"],
            "tid": event["tid"],
            "start_s": event["ts"] / 1e6,
            "dur_s": event["dur"] / 1e6,
            "attrs": args,
        })
    return spans


def export_trace_file(in_path: str, out_path: str) -> dict:
    """Read an obs trace file, write its Chrome conversion.

    Returns summary info (span/event counts) for CLI reporting.
    """
    with open(in_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    chrome = to_chrome_trace(doc)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(chrome, fh)
    return {
        "run": doc["run"],
        "spans": len(doc["spans"]),
        "events": len(chrome["traceEvents"]),
        "out": out_path,
    }
