"""Run-metrics registry: counters, gauges, histograms, stage timings.

This is the successor of the old ``repro.exec.stats.ExecStats``
registry, promoted out of the execution engine so every layer (uarch
kernels, data builders, ML training, the CLI) can report into one
process-wide sink without importing ``repro.exec``. The legacy names —
``EXEC_STATS``, ``ExecStats`` — remain importable from
``repro.exec.stats`` as aliases of this module's :data:`METRICS` /
:class:`Metrics`.

Four instrument kinds:

* **stage timings** — :meth:`Metrics.add_time` / :meth:`Metrics.stage`
  accumulate per-stage wall/busy seconds and worker capacity, exactly
  as ``ExecStats`` always did.
* **counters** — monotonically increasing event counts
  (:meth:`Metrics.incr`).
* **gauges** — instantaneous levels that can go up *and* down
  (:meth:`Metrics.gauge_add` / :meth:`Metrics.gauge_set`), e.g.
  ``parallel.pools_open``, the number of live worker pools.
* **histograms** — value distributions summarised as
  count/total/min/max (:meth:`Metrics.observe`), e.g.
  ``adaptive_infer.batch_rows``, the rows per model-inference call.

Worker aggregation: metrics observed inside a process-pool worker used
to die with the worker. :meth:`mark` / :meth:`delta` / :meth:`merge`
close that gap — a worker snapshots a mark before running a chunk,
computes the delta after, and ships it back through the chunk result;
the parent merges deltas whose origin pid differs from its own (thread
workers share this registry, so their deltas must not double-count).
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
import time


@dataclasses.dataclass
class StageStat:
    """Accumulated timing for one named execution stage."""

    calls: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0  # summed worker-side task time
    workers: int = 1  # widest pool observed for this stage
    capacity_s: float = 0.0  # sum of per-call wall x effective workers

    @property
    def utilization(self) -> float:
        """Fraction of available worker-seconds spent doing work.

        Capacity is accumulated per call as ``wall x effective_workers``,
        so a stage whose calls mix parallel fan-outs with serial
        fallbacks is judged against the workers each call actually had —
        not against the widest pool ever observed, which made serial
        fallbacks look like 25% utilisation on a 4-worker pool.
        """
        capacity = self.capacity_s
        if capacity <= 0.0:
            capacity = self.wall_s * self.workers
        if capacity <= 0.0:
            return 0.0
        return self.busy_s / capacity


@dataclasses.dataclass
class HistogramStat:
    """Summary of an observed value distribution."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class Metrics:
    """Thread-safe registry of stage timings, counters, gauges and
    histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, StageStat] = {}
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, HistogramStat] = {}

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def add_time(self, stage: str, wall_s: float, busy_s: float | None = None,
                 workers: int = 1) -> None:
        """Account one completed stage execution."""
        with self._lock:
            stat = self._stages.setdefault(stage, StageStat())
            stat.calls += 1
            stat.wall_s += wall_s
            stat.busy_s += wall_s if busy_s is None else busy_s
            stat.workers = max(stat.workers, workers)
            stat.capacity_s += wall_s * max(1, workers)

    @contextlib.contextmanager
    def stage(self, name: str):
        """Time a ``with`` block as one execution of ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def incr(self, counter: str, n: int = 1) -> None:
        """Bump a named event counter."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + n

    def count(self, counter: str) -> int:
        """Current value of a named event counter (0 if never bumped)."""
        with self._lock:
            return self._counters.get(counter, 0)

    def gauge_add(self, gauge: str, delta: float) -> None:
        """Move a gauge up (positive delta) or down (negative)."""
        with self._lock:
            self._gauges[gauge] = self._gauges.get(gauge, 0) + delta

    def gauge_set(self, gauge: str, value: float) -> None:
        """Pin a gauge to an absolute level."""
        with self._lock:
            self._gauges[gauge] = value

    def gauge(self, gauge: str) -> float:
        """Current gauge level (0 if never touched)."""
        with self._lock:
            return self._gauges.get(gauge, 0)

    def observe(self, hist: str, value: float) -> None:
        """Record one observation into a histogram."""
        with self._lock:
            self._hists.setdefault(hist, HistogramStat()).observe(value)

    def per_item_cost(self, stage: str) -> float | None:
        """Observed busy seconds per item for a stage, if known.

        Uses the ``<stage>.items`` counter that :class:`ParallelMap`
        maintains alongside each stage timing; returns ``None`` until
        the stage has run at least once. The adaptive dispatcher uses
        this to size chunks and to decide whether a fan-out is worth a
        pool at all.
        """
        with self._lock:
            stat = self._stages.get(stage)
            items = self._counters.get(f"{stage}.items", 0)
        if stat is None or items <= 0 or stat.busy_s <= 0.0:
            return None
        return stat.busy_s / items

    def reset(self) -> None:
        """Clear all instruments (tests, bench reruns)."""
        with self._lock:
            self._stages.clear()
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()

    # ------------------------------------------------------------------
    # Worker aggregation.
    # ------------------------------------------------------------------
    def mark(self) -> dict:
        """Opaque checkpoint of the registry for a later :meth:`delta`."""
        with self._lock:
            return {
                "stages": {name: dataclasses.replace(s)
                           for name, s in self._stages.items()},
                "counters": dict(self._counters),
                "hists": {name: dataclasses.replace(h)
                          for name, h in self._hists.items()},
            }

    def delta(self, mark: dict) -> dict:
        """Everything recorded since ``mark``, as a picklable dict.

        Gauges are deliberately absent: a gauge is a level owned by the
        process that set it (a worker's view of ``parallel.pools_open``
        says nothing about the parent's pools), so shipping gauge
        deltas across processes would corrupt the parent's levels.
        """
        out: dict = {"pid": os.getpid(), "stages": {}, "counters": {},
                     "hists": {}}
        with self._lock:
            prev_stages = mark["stages"]
            for name, stat in self._stages.items():
                prev = prev_stages.get(name, StageStat())
                if stat.calls == prev.calls and stat.wall_s == prev.wall_s:
                    continue
                out["stages"][name] = {
                    "calls": stat.calls - prev.calls,
                    "wall_s": stat.wall_s - prev.wall_s,
                    "busy_s": stat.busy_s - prev.busy_s,
                    "workers": stat.workers,
                    "capacity_s": stat.capacity_s - prev.capacity_s,
                }
            prev_counters = mark["counters"]
            for name, value in self._counters.items():
                diff = value - prev_counters.get(name, 0)
                if diff:
                    out["counters"][name] = diff
            prev_hists = mark["hists"]
            for name, hist in self._hists.items():
                prev = prev_hists.get(name)
                n_prev = prev.count if prev else 0
                if hist.count == n_prev:
                    continue
                out["hists"][name] = {
                    "count": hist.count - n_prev,
                    "total": hist.total - (prev.total if prev else 0.0),
                    "min": hist.min,
                    "max": hist.max,
                }
        return out

    def merge(self, delta: dict) -> bool:
        """Fold a worker's :meth:`delta` into this registry.

        Returns ``False`` (and merges nothing) when the delta
        originated in this very process — thread-pool workers share the
        registry, so their observations are already here and merging
        would double-count them.
        """
        if delta.get("pid") == os.getpid():
            return False
        with self._lock:
            for name, d in delta.get("stages", {}).items():
                stat = self._stages.setdefault(name, StageStat())
                stat.calls += d["calls"]
                stat.wall_s += d["wall_s"]
                stat.busy_s += d["busy_s"]
                stat.workers = max(stat.workers, d["workers"])
                stat.capacity_s += d["capacity_s"]
            for name, diff in delta.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + diff
            for name, d in delta.get("hists", {}).items():
                hist = self._hists.setdefault(name, HistogramStat())
                hist.count += d["count"]
                hist.total += d["total"]
                if d["min"] < hist.min:
                    hist.min = d["min"]
                if d["max"] > hist.max:
                    hist.max = d["max"]
        return True

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Machine-readable copy of every instrument."""
        with self._lock:
            return {
                "stages": {
                    name: {
                        "calls": s.calls,
                        "wall_s": s.wall_s,
                        "busy_s": s.busy_s,
                        "workers": s.workers,
                        "capacity_s": s.capacity_s,
                        "utilization": s.utilization,
                    }
                    for name, s in sorted(self._stages.items())
                },
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: {
                        "count": h.count,
                        "total": h.total,
                        "min": h.min,
                        "max": h.max,
                        "mean": h.mean,
                    }
                    for name, h in sorted(self._hists.items())
                },
            }

    #: Counters summarised under ``resilience:`` in :meth:`report` —
    #: every rung of the degradation ladder plus integrity detections
    #: and injected faults, so a chaos run's recovery story is legible
    #: at a glance.
    RESILIENCE_COUNTERS = (
        "parallel.retries",
        "parallel.timeouts",
        "parallel.pool_rebuild",
        "parallel.degrade_thread",
        "parallel.fallback_serial",
        "simcache.quarantine",
        "arena.attach_fallback",
    )

    def resilience(self) -> dict[str, int]:
        """Non-zero resilience counters (degradations, recoveries,
        integrity detections, injected faults)."""
        with self._lock:
            out = {name: self._counters[name]
                   for name in self.RESILIENCE_COUNTERS
                   if self._counters.get(name)}
            out.update({name: value
                        for name, value in sorted(self._counters.items())
                        if name.startswith("faults.injected.") and value})
        return out

    def hit_rate(self, prefix: str) -> float | None:
        """Hit rate for a ``<prefix>.hit``/``<prefix>.miss`` counter pair."""
        hits = self.count(f"{prefix}.hit")
        misses = self.count(f"{prefix}.miss")
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def report(self) -> str:
        """Human-readable execution report (the ``--exec-report`` text)."""
        snap = self.snapshot()
        lines = ["=== execution report ==="]
        if snap["stages"]:
            lines.append(f"{'stage':<24s} {'calls':>6s} {'wall s':>9s} "
                         f"{'busy s':>9s} {'util':>6s}")
            for name, s in snap["stages"].items():
                lines.append(
                    f"{name:<24s} {s['calls']:>6d} {s['wall_s']:>9.3f} "
                    f"{s['busy_s']:>9.3f} {s['utilization'] * 100:>5.0f}%"
                )
        if snap["counters"]:
            lines.append("counters:")
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<30s} {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<30s} {value:g}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, h in snap["histograms"].items():
                lines.append(
                    f"  {name:<30s} n={h['count']} mean={h['mean']:.1f} "
                    f"min={h['min']:g} max={h['max']:g}"
                )
        resilience = self.resilience()
        if resilience:
            lines.append("resilience:")
            for name, value in resilience.items():
                lines.append(f"  {name:<30s} {value}")
        for prefix in ("interval_lru", "simcache"):
            rate = self.hit_rate(prefix)
            if rate is not None:
                lines.append(f"{prefix} hit rate: {rate * 100:.1f}%")
        if len(lines) == 1:
            lines.append("(no stages recorded)")
        return "\n".join(lines)


#: The process-wide registry every execution path reports into.
METRICS = Metrics()
