"""Deterministic random-number utilities.

Every stochastic component of the reproduction derives its generator
from a *named stream*: a (seed, name) pair hashed into an independent
``numpy.random.Generator``. This keeps experiments reproducible even
when components are added, removed or reordered, because no component
consumes another's random numbers.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stream(seed: int, *names: object) -> np.random.Generator:
    """Return an independent generator for the named stream.

    Parameters
    ----------
    seed:
        The global experiment seed.
    names:
        Any hashable/stringifiable identifiers for this stream, e.g.
        ``stream(7, "hdtr", "app", 13)``.
    """
    digest = hashlib.sha256(
        ("/".join(str(n) for n in (seed, *names))).encode()
    ).digest()
    material = np.frombuffer(digest[:16], dtype=np.uint64)
    return np.random.Generator(np.random.PCG64(material))


def derive_seed(seed: int, *names: object) -> int:
    """Derive a stable child seed for the named stream."""
    digest = hashlib.sha256(
        ("/".join(str(n) for n in (seed, *names))).encode()
    ).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)
