"""repro — reproduction of "Post-Silicon CPU Adaptation Made Practical
Using Machine Learning" (Tarsa et al., ISCA 2019).

An adaptive two-cluster CPU that performs *predictive cluster gating*:
ML adaptation models hosted in microcontroller firmware read telemetry
counters every few tens of thousands of instructions and decide, two
intervals ahead, whether to clock-gate the second execution cluster.

Quick start::

    from repro import quick_demo
    result = quick_demo()
    print(result)

Package map — see DESIGN.md for the full inventory:

* ``repro.core`` — labels, SLA, dual-mode predictor, gating controller,
  closed-loop adaptive CPU, train/deploy pipeline.
* ``repro.uarch`` — cycle-level and interval-level simulators, power.
* ``repro.telemetry`` — 936-counter catalog, collector, PF selection.
* ``repro.workloads`` — phase-structured synthetic workloads, the
  HDTR-like training corpus and the SPEC2017-like held-out suite.
* ``repro.ml`` — from-scratch MLP/forest/logistic/SVM estimators.
* ``repro.firmware`` — model compilation, op budgets, firmware VM,
  post-silicon update flow.
* ``repro.data`` — dataset builders and caching.
* ``repro.eval`` — PGOS/RSV metrics, deployment runner, blindspots.
* ``repro.exec`` — execution engine: parallel map backends, the
  content-addressed simulation cache, stage/cache instrumentation.
"""

from repro.config import (
    DEFAULT_SLA,
    MachineConfig,
    MicrocontrollerConfig,
    SLAConfig,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SLA",
    "MachineConfig",
    "MicrocontrollerConfig",
    "SLAConfig",
    "quick_demo",
]


def quick_demo(seed: int = 7) -> dict:
    """Train a small Best-RF predictor and deploy it on a few held-out
    benchmarks; returns headline numbers. Meant as a two-minute smoke
    of the whole stack — see ``examples/quickstart.py`` for the
    narrated version.
    """
    from repro.core.pipeline import build_standard_models
    from repro.data.builders import hdtr_traces
    from repro.eval.runner import evaluate_predictor
    from repro.telemetry.collector import TelemetryCollector
    from repro.workloads.categories import hdtr_corpus
    from repro.workloads.spec2017 import spec2017_traces

    collector = TelemetryCollector()
    apps = hdtr_corpus(seed)[::4]
    train = hdtr_traces(seed, apps=apps, workloads_per_app=2,
                        intervals_per_trace=100)
    models = build_standard_models(train, seed=seed, collector=collector,
                                   include=["best_rf"],
                                   selection_traces=24)
    test = spec2017_traces(seed + 1, intervals_per_trace=120,
                           traces_per_workload=1)[::5]
    suite = evaluate_predictor(models["best_rf"], test,
                               collector=collector)
    return {
        "ppw_gain": suite.mean_ppw_gain,
        "rsv": suite.mean_rsv,
        "pgos": suite.mean_pgos,
        "low_power_residency": suite.mean_residency,
        "avg_performance": suite.mean_avg_performance,
    }
