"""Deployment evaluation runner.

Deploys a trained :class:`~repro.core.predictor.DualModePredictor` on a
held-out trace corpus through the closed-loop
:class:`~repro.core.adaptive_cpu.AdaptiveCPU`, then aggregates the
paper's headline quantities — PPW gain, RSV, PGOS, residency, average
performance — per benchmark and over the suite (Figures 8/9, Tables
5/6).
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from repro.config import (DEFAULT_SLA, SLAConfig, exec_shard_size,
                          surrogate_enabled)
from repro.core.adaptive_cpu import AdaptiveCPU, AdaptiveRunResult
from repro.core.predictor import DualModePredictor
from repro.errors import DatasetError
from repro.eval.metrics import effective_sla_window, pgos, pooled_rsv
from repro.exec.parallel import ParallelMap
from repro.exec.stats import EXEC_STATS
from repro.obs import tracer
from repro.telemetry.collector import TelemetryCollector
from repro.uarch.power import PowerModel
from repro.workloads.generator import TraceSpec


@dataclasses.dataclass(frozen=True)
class BenchmarkEval:
    """Aggregated results for one benchmark/application."""

    app_name: str
    ppw_gain: float
    rsv: float
    pgos: float
    residency: float
    avg_performance: float
    n_traces: int


@dataclasses.dataclass(frozen=True)
class SuiteEval:
    """Suite-level evaluation of one predictor."""

    predictor_name: str
    granularity: int
    per_benchmark: tuple[BenchmarkEval, ...]
    runs: tuple[AdaptiveRunResult, ...]

    @functools.cached_property
    def _benchmark_index(self) -> dict[str, BenchmarkEval]:
        return {bench.app_name: bench for bench in self.per_benchmark}

    def benchmark(self, app_name: str) -> BenchmarkEval:
        """Results for one benchmark by name (O(1) after first call)."""
        try:
            return self._benchmark_index[app_name]
        except KeyError:
            raise DatasetError(
                f"no benchmark {app_name!r} in evaluation") from None

    def _mean(self, attr: str, apps: list[str] | None = None) -> float:
        values = [getattr(b, attr) for b in self.per_benchmark
                  if apps is None or b.app_name in apps]
        if not values:
            raise DatasetError("no benchmarks selected")
        return float(np.mean(values))

    @property
    def mean_ppw_gain(self) -> float:
        """Mean PPW gain across benchmarks (the paper's average)."""
        return self._mean("ppw_gain")

    @property
    def mean_rsv(self) -> float:
        """Mean RSV across benchmarks."""
        return self._mean("rsv")

    @property
    def mean_pgos(self) -> float:
        return self._mean("pgos")

    @property
    def mean_residency(self) -> float:
        return self._mean("residency")

    @property
    def mean_avg_performance(self) -> float:
        return self._mean("avg_performance")

    def suite_means(self, apps: list[str]) -> dict[str, float]:
        """Means over a benchmark subset (e.g. SPECint vs SPECfp)."""
        return {
            "ppw_gain": self._mean("ppw_gain", apps),
            "rsv": self._mean("rsv", apps),
            "pgos": self._mean("pgos", apps),
            "residency": self._mean("residency", apps),
            "avg_performance": self._mean("avg_performance", apps),
        }


def _aggregate_app(app_name: str, runs: list[AdaptiveRunResult],
                   window: int) -> BenchmarkEval:
    y_true = np.concatenate([run.labels for run in runs])
    y_pred = np.concatenate([run.predictions for run in runs])
    rsv_value = pooled_rsv([(run.labels, run.predictions) for run in runs],
                           window)
    return BenchmarkEval(
        app_name=app_name,
        ppw_gain=float(np.mean([run.ppw_gain for run in runs])),
        rsv=rsv_value,
        pgos=pgos(y_true, y_pred),
        residency=float(np.mean([run.residency for run in runs])),
        avg_performance=float(np.mean([run.avg_performance
                                       for run in runs])),
        n_traces=len(runs),
    )


def evaluate_predictor(predictor: DualModePredictor,
                       traces: list[TraceSpec],
                       sla: SLAConfig = DEFAULT_SLA,
                       collector: TelemetryCollector | None = None,
                       power: PowerModel | None = None,
                       window: int | None = None,
                       pmap: ParallelMap | None = None) -> SuiteEval:
    """Deploy a predictor on a trace corpus and aggregate the results.

    ``window`` is the RSV window in predictions; by default it is the
    scaled Eq.-2 window for the predictor's gating granularity.
    ``pmap`` selects the execution backend for the per-trace closed
    loops (serial unless configured); process backends ship the corpus
    once via the :class:`~repro.exec.arena.TraceArena` when
    ``REPRO_EXEC_ARENA=1``, and ``REPRO_EXEC_SHARD`` streams the
    closed loops shard-by-shard with bounded parent RSS (see
    :meth:`~repro.core.adaptive_cpu.AdaptiveCPU.run_many`). Suite
    metrics are bit-identical across backends, arena and shard
    settings.
    """
    if not traces:
        raise DatasetError("no traces to evaluate")
    shard = exec_shard_size()
    n_shards = (1 if shard is None or len(traces) <= shard
                else -(-len(traces) // shard))
    with tracer.span("evaluate.predictor", predictor=predictor.name,
                     traces=len(traces), shards=n_shards,
                     surrogate=surrogate_enabled()):
        cpu = AdaptiveCPU(predictor, collector=collector, power=power,
                          sla=sla)
        runs = cpu.run_many(traces, pmap=pmap)
        granularity = runs[0].granularity
        if window is None:
            window = effective_sla_window(granularity, cpu.machine, sla)
        by_app: dict[str, list[AdaptiveRunResult]] = {}
        for run in runs:
            by_app.setdefault(run.app_name, []).append(run)
        with EXEC_STATS.stage("evaluate_aggregate"):
            per_benchmark = tuple(
                _aggregate_app(app, app_runs, window)
                for app, app_runs in sorted(by_app.items())
            )
        return SuiteEval(
            predictor_name=predictor.name,
            granularity=granularity,
            per_benchmark=per_benchmark,
            runs=tuple(runs),
        )
