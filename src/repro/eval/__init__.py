"""Evaluation: the paper's metrics, deployment runner and reports.

* :mod:`repro.eval.metrics` — PGOS (Eq. 1) and the rate of SLA
  violations RSV (Eqs. 2-4) computed from prediction errors.
* :mod:`repro.eval.runner` — deploys trained predictors on the held-out
  suite and aggregates per-benchmark and suite-level results.
* :mod:`repro.eval.blindspots` — per-application breakdowns that
  surface statistical blindspots (Figure 9).
* :mod:`repro.eval.reporting` — plain-text table/figure renderers used
  by the benchmark harness.
"""

from repro.eval.metrics import (
    effective_sla_window,
    expected_false_positive,
    pgos,
    rsv,
    violation_indicator_windows,
)
from repro.eval.blindspots import analyze_blindspots, compare_models
from repro.eval.runner import BenchmarkEval, SuiteEval, evaluate_predictor

__all__ = [
    "analyze_blindspots",
    "compare_models",
    "effective_sla_window",
    "expected_false_positive",
    "pgos",
    "rsv",
    "violation_indicator_windows",
    "BenchmarkEval",
    "SuiteEval",
    "evaluate_predictor",
]
