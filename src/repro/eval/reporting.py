"""Plain-text table and series renderers for the benchmark harness.

Every benchmark regenerates the rows/series of one paper table or
figure; these helpers give them a uniform, diff-friendly format that
is both printed and written under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def format_series(title: str, x_label: str, series: Mapping[str, Sequence[float]],
                  x_values: Sequence[object]) -> str:
    """Render figure-style series as a table of x vs each series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(title, headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def percent(value: float, digits: int = 1) -> str:
    """Format a 0-1 fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def results_dir() -> str:
    """The directory benchmark outputs are written to."""
    path = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
            "benchmarks", "results"),
    )
    os.makedirs(path, exist_ok=True)
    return path


def emit(name: str, text: str) -> str:
    """Print a report and persist it under the results directory."""
    print()
    print(text)
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
