"""The paper's system-oriented prediction metrics (Section 4.2).

* **PGOS** — Percentage of Gating Opportunities Seized (Eq. 1), the
  recall of low-power predictions; PGOS drives PPW gains.
* **RSV** — Rate of SLA Violations (Eqs. 2-4): predictions are split
  into windows of ``W`` samples; a window violates the SLA in
  expectation when more than half its predictions are false positives
  (wrong low-power decisions); RSV is the fraction of violating
  windows. Large RSV flags *systematic* errors within a workload phase
  — a statistical blindspot — whereas spurious errors wash out.

The paper's window is ``W = R * T_SLA * L`` = 1600 predictions at 10k
granularity (16 GIPS, 1 ms). Our traces are scaled down ~100x, so
:func:`effective_sla_window` scales ``W`` by the same knob that scales
the datasets, keeping windows comparable to phase dwell times exactly
as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_SLA, MachineConfig, SLAConfig
from repro.errors import DatasetError

#: Scale factor applied to the paper's SLA window length; the default
#: matches the ~100x trace-length scale-down of the default datasets.
SLA_WINDOW_SCALE = 0.01

#: Smallest usable window, in predictions.
MIN_WINDOW = 4


def effective_sla_window(granularity: int,
                         machine: MachineConfig | None = None,
                         sla: SLAConfig = DEFAULT_SLA,
                         window_scale: float = SLA_WINDOW_SCALE) -> int:
    """Scaled window size ``W`` in predictions (Eq. 2's sample size)."""
    machine = machine or MachineConfig()
    paper_w = sla.window_predictions(machine, granularity)
    return max(MIN_WINDOW, int(round(paper_w * window_scale)))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    # Tied runs in the sorted order all receive the mean of the
    # positions they span (scipy's "average" method).
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_vals[1:] != sorted_vals[:-1],
                        [True])))
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        ranks[order[start:stop]] = 0.5 * (start + stop - 1) + 1.0
    return ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation, dependency-free.

    Pearson correlation of average ranks (ties share their mean rank),
    matching ``scipy.stats.spearmanr``. Used to validate one simulator
    tier against the next (cycle vs interval in
    ``benchmarks/bench_sim_validation.py``, interval vs surrogate in
    the :mod:`repro.surrogate` agreement gate). Returns 0.0 when either
    input has zero rank variance.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise DatasetError(
            f"shape mismatch: {x.shape} vs {y.shape}"
        )
    if x.size < 2:
        raise DatasetError(
            f"spearman needs at least 2 samples, got {x.size}"
        )
    rx = _ranks(x)
    ry = _ranks(y)
    rx = rx - rx.mean()
    ry = ry - ry.mean()
    denom = np.sqrt((rx * rx).sum() * (ry * ry).sum())
    if denom == 0.0:
        return 0.0
    return float((rx * ry).sum() / denom)


def mean_relative_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of ``|pred - true| / |true|``; the surrogate MRE gate."""
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise DatasetError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise DatasetError("mean_relative_error needs at least 1 sample")
    if np.any(y_true == 0.0):
        raise DatasetError("mean_relative_error undefined for zero truth")
    return float(np.mean(np.abs(y_pred - y_true) / np.abs(y_true)))


def _check(y_true: np.ndarray, y_pred: np.ndarray,
           ) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise DatasetError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    return y_true, y_pred


def pgos(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Percentage of gating opportunities seized (Eq. 1), in [0, 1].

    Correct low-power predictions over ground-truth low-power
    intervals. Returns 0 when no gating opportunities exist.
    """
    y_true, y_pred = _check(y_true, y_pred)
    opportunities = int((y_true == 1).sum())
    if opportunities == 0:
        return 0.0
    seized = int(((y_pred == 1) & (y_true == 1)).sum())
    return seized / opportunities


def expected_false_positive(y_true: np.ndarray,
                            y_pred: np.ndarray) -> float:
    """Eq. 2: expectation of the false-positive indicator over a sample."""
    y_true, y_pred = _check(y_true, y_pred)
    if y_true.size == 0:
        raise DatasetError("empty sample")
    fp = (y_pred != y_true) & (y_true == 0)
    return float(fp.mean())


def violation_indicator_windows(y_true: np.ndarray, y_pred: np.ndarray,
                                window: int) -> np.ndarray:
    """Eq. 3: per-window violation indicators ``V``.

    Splits the prediction stream into consecutive windows of ``window``
    samples (dropping any partial tail) and marks each window whose
    expected false-positive rate exceeds 50% — i.e. a randomly
    recorded IPC measurement inside it is more likely than not to be
    found violating the SLA.
    """
    y_true, y_pred = _check(y_true, y_pred)
    if window <= 0:
        raise DatasetError(f"window must be positive, got {window}")
    n_windows = y_true.shape[0] // window
    if n_windows == 0:
        raise DatasetError(
            f"{y_true.shape[0]} predictions cannot fill a window of "
            f"{window}"
        )
    t_full = n_windows * window
    fp = ((y_pred != y_true) & (y_true == 0)).astype(np.float64)
    window_fp = fp[:t_full].reshape(n_windows, window).mean(axis=1)
    return (window_fp > 0.5).astype(np.int64)


def rsv(y_true: np.ndarray, y_pred: np.ndarray, window: int) -> float:
    """Eq. 4: rate of SLA violations over the window set, in [0, 1]."""
    indicators = violation_indicator_windows(y_true, y_pred, window)
    return float(indicators.mean())


def pooled_rsv(pairs: list[tuple[np.ndarray, np.ndarray]],
               window: int) -> float:
    """RSV pooled over several traces' prediction streams.

    Windows never straddle traces; the rate is over all windows of all
    traces, matching the paper's "complete set of samples spanning a
    trace".
    """
    indicators = [violation_indicator_windows(y_true, y_pred, window)
                  for y_true, y_pred in pairs
                  if y_true.shape[0] >= window]
    if not indicators:
        raise DatasetError("no trace fills a single window")
    return float(np.concatenate(indicators).mean())
