"""Blindspot analysis (Sections 4.2, 7.1; Figure 9).

A statistical blindspot is a region of the telemetry distribution
where a model errs *systematically*: its false positives concentrate
in particular workload phases rather than scattering. This module
quantifies that — per-application RSV breakdowns, FP clustering (run
lengths of consecutive wrong gating decisions), and side-by-side model
comparisons of the kind Figure 9 plots.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import DatasetError
from repro.eval.runner import SuiteEval


@dataclasses.dataclass(frozen=True)
class BlindspotReport:
    """Blindspot indicators for one model on one application."""

    app_name: str
    rsv: float
    fp_rate: float
    max_fp_run: int
    mean_fp_run: float
    fp_burstiness: float  # mean run length over the iid expectation

    @property
    def systematic(self) -> bool:
        """Heuristic flag: errors cluster far beyond chance."""
        return self.rsv > 0.05 or self.fp_burstiness > 4.0


def _run_lengths(flags: np.ndarray) -> np.ndarray:
    """Lengths of runs of True values."""
    if flags.size == 0:
        return np.zeros(0, dtype=np.int64)
    padded = np.concatenate(([False], flags, [False]))
    changes = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return changes[1::2] - changes[0::2]


def analyze_blindspots(suite: SuiteEval) -> list[BlindspotReport]:
    """Per-application blindspot indicators for a deployed model."""
    by_app: dict[str, list] = {}
    for run in suite.runs:
        by_app.setdefault(run.app_name, []).append(run)
    reports: list[BlindspotReport] = []
    for app_name, runs in sorted(by_app.items()):
        fp_flags = []
        run_lengths: list[np.ndarray] = []
        for run in runs:
            fp = (run.predictions == 1) & (run.labels == 0)
            fp_flags.append(fp)
            run_lengths.append(_run_lengths(fp))
        fp_all = np.concatenate(fp_flags)
        lengths = np.concatenate(run_lengths) if run_lengths else np.zeros(0)
        fp_rate = float(fp_all.mean()) if fp_all.size else 0.0
        mean_run = float(lengths.mean()) if lengths.size else 0.0
        # Expected run length if FPs were iid Bernoulli(fp_rate).
        expected_run = 1.0 / max(1.0 - fp_rate, 1e-9)
        bench = suite.benchmark(app_name)
        reports.append(BlindspotReport(
            app_name=app_name,
            rsv=bench.rsv,
            fp_rate=fp_rate,
            max_fp_run=int(lengths.max()) if lengths.size else 0,
            mean_fp_run=mean_run,
            fp_burstiness=mean_run / expected_run if fp_rate > 0 else 0.0,
        ))
    return reports


def compare_models(reference: SuiteEval, candidate: SuiteEval,
                   ) -> list[dict]:
    """Figure-9 style per-benchmark comparison of two deployed models."""
    ref_apps = {b.app_name for b in reference.per_benchmark}
    cand_apps = {b.app_name for b in candidate.per_benchmark}
    if ref_apps != cand_apps:
        raise DatasetError("model evaluations cover different benchmarks")
    rows = []
    for app in sorted(ref_apps):
        ref = reference.benchmark(app)
        cand = candidate.benchmark(app)
        rows.append({
            "benchmark": app,
            "ref_ppw_gain": ref.ppw_gain,
            "cand_ppw_gain": cand.ppw_gain,
            "ref_rsv": ref.rsv,
            "cand_rsv": cand.rsv,
            "rsv_reduction": ref.rsv - cand.rsv,
        })
    return rows


def worst_blindspot(suite: SuiteEval) -> BlindspotReport:
    """The most systematic failure across applications."""
    reports = analyze_blindspots(suite)
    if not reports:
        raise DatasetError("empty evaluation")
    return max(reports, key=lambda r: (r.rsv, r.fp_burstiness))
