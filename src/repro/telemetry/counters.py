"""The 936-entry event counter catalog.

Real PMU catalogs observe a modest set of underlying microarchitectural
events through hundreds of counter definitions: per-unit duplicates,
different unit masks and edge conditions (gain/offset), speculative vs
retired flavours (noisy copies), sums of events (combinations), rare-
event counters that read zero most of the time, and — on any given
stepping — dead or stuck counters. The paper records all 936 available
counters and then *screens* them (Section 6.2), so the catalog must
contain realistic junk for the screens to remove.

Every counter derives from the simulator's base signals
(:mod:`repro.uarch.signals`):

``count = round(gain * (w1 * S[b1] + w2 * S[b2]) + offset_bias
               + sqrt(.) * z * noise_mult)``

clipped at zero — integer event counts with Poisson-like measurement
noise. The catalog is a fixed property of the hardware, generated once
from a dedicated catalog seed, independent of experiment seeds.

Named members reproduce the paper's counter sets:

* :data:`TABLE4_COUNTERS` — the 12 counters of Table 4 (what PF
  Counter Selection identifies);
* :data:`CHARSTAR_COUNTERS` — the 8 expert-chosen counters used for
  the CHARSTAR baseline (Section 7), including the derived IPC
  counter. Note this set lacks Store Queue Occupancy — the blindspot.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.uarch.signals import N_SIGNALS, signal_index, signal_names

#: The catalog is fixed hardware; its layout never depends on
#: experiment seeds.
CATALOG_SEED = 0xC0DE

#: Total number of counters the telemetry system exposes (Section 4.1).
CATALOG_SIZE = 936

#: Counter kinds, in the order used by the synthesis kernel.
KIND_ALIAS = 0  # clean view of one base signal
KIND_SCALED = 1  # gain/offset variant of one base signal
KIND_NOISY = 2  # high-measurement-noise variant
KIND_COMBO = 3  # weighted sum of two base signals
KIND_RARE = 4  # rare-event counter (tiny expected counts)
KIND_DEAD = 5  # unwired: always zero
KIND_STUCK = 6  # stuck-at: constant value, zero variance

_KIND_NAMES = {
    KIND_ALIAS: "alias",
    KIND_SCALED: "scaled",
    KIND_NOISY: "noisy",
    KIND_COMBO: "combo",
    KIND_RARE: "rare",
    KIND_DEAD: "dead",
    KIND_STUCK: "stuck",
}


@dataclasses.dataclass(frozen=True)
class CounterDef:
    """One catalog entry."""

    counter_id: int
    name: str
    kind: int
    base1: int
    base2: int
    gain: float
    w2: float
    offset: float
    noise_mult: float

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES[self.kind]


#: Table 4: the 12 counters PF Counter Selection identifies, mapped to
#: the base signals that carry the same meaning in our simulator.
TABLE4_COUNTERS: tuple[tuple[str, str], ...] = (
    ("Micro Op Cache Misses", "uopcache_misses"),
    ("L2 Silent Evictions", "l2_silent_evictions"),
    ("Wrong-Path uOps Flushed", "wrong_path_uops"),
    ("Store Queue Occupancy", "sq_occupancy"),
    ("L1 Data Cache Reads", "l1d_reads"),
    ("Stall Count", "stall_cycles"),
    ("Physical Register Ref. Count", "preg_refs"),
    ("Loads Retired", "loads_retired"),
    ("L1 Data Cache Hits", "l1d_hits"),
    ("Micro Op Cache Hits", "uopcache_hits"),
    ("Micro Ops Stalled on Dep.", "uops_stalled_dep"),
    ("Micro Ops Ready", "uops_ready"),
)

#: The CHARSTAR baseline's expert-chosen counters (Section 7): five
#: from Eyerman et al.'s CPI-stack analysis plus three replacements.
#: "IPC" is the retired-instruction count, which becomes IPC once the
#: collector normalises by cycles.
CHARSTAR_COUNTERS: tuple[tuple[str, str], ...] = (
    ("Branch Mispredictions", "branch_mispredicts"),
    ("Instruction Cache Misses", "icache_misses"),
    ("Data Cache Misses", "l1d_misses"),
    ("L2 Cache Misses", "l2_misses"),
    ("IPC", "instructions"),
    ("I-TLB Misses", "itlb_misses"),
    ("D-TLB Misses", "dtlb_misses"),
    ("Stall Count", "stall_cycles"),
)

#: Base signals with naturally tiny per-interval counts; rare-event
#: counters alias these (and read zero in most intervals).
_RARE_SIGNALS = (
    "machine_clears",
    "fp_divides",
    "store_buffer_drains",
    "itlb_misses",
    "mode_switches",
    "l3_misses",
    "icache_misses",
    "dtlb_misses",
)


class CounterCatalog:
    """The full telemetry counter catalog plus the synthesis kernel."""

    def __init__(self, counters: list[CounterDef]) -> None:
        if len({c.name for c in counters}) != len(counters):
            raise ConfigurationError("counter names must be unique")
        self.counters = tuple(counters)
        self._by_name = {c.name: c for c in counters}
        # Dense parameter arrays for vectorised synthesis.
        n = len(counters)
        self._kind = np.array([c.kind for c in counters], dtype=np.int64)
        self._base1 = np.array([c.base1 for c in counters], dtype=np.int64)
        self._base2 = np.array([c.base2 for c in counters], dtype=np.int64)
        self._gain = np.array([c.gain for c in counters])
        self._w2 = np.array([c.w2 for c in counters])
        self._offset = np.array([c.offset for c in counters])
        self._noise = np.array([c.noise_mult for c in counters])
        if n != len(set(c.counter_id for c in counters)):
            raise ConfigurationError("counter ids must be unique")

    def __len__(self) -> int:
        return len(self.counters)

    def token(self) -> str:
        """Stable content fingerprint of the catalog (cache keys)."""
        if not hasattr(self, "_token"):
            h = hashlib.sha256()
            for c in self.counters:
                h.update(repr((c.counter_id, c.name, c.kind, c.base1,
                               c.base2, c.gain, c.w2, c.offset,
                               c.noise_mult)).encode())
            self._token = h.hexdigest()
        return self._token

    def __getitem__(self, counter_id: int) -> CounterDef:
        return self.counters[counter_id]

    def by_name(self, name: str) -> CounterDef:
        """Look up a counter by display name."""
        return self._by_name[name]

    def ids_for_names(self, names: list[str]) -> list[int]:
        """Counter ids for a list of display names."""
        return [self._by_name[name].counter_id for name in names]

    def names(self) -> list[str]:
        """All counter display names, ordered by id."""
        return [c.name for c in self.counters]

    @property
    def table4_ids(self) -> list[int]:
        """Ids of the 12 Table-4 counters."""
        return self.ids_for_names([name for name, _ in TABLE4_COUNTERS])

    @property
    def charstar_ids(self) -> list[int]:
        """Ids of the 8 CHARSTAR expert counters."""
        return self.ids_for_names([name for name, _ in CHARSTAR_COUNTERS])

    # ------------------------------------------------------------------
    # Synthesis.
    # ------------------------------------------------------------------
    def materialize(self, signals: np.ndarray, noise_z: np.ndarray,
                    counter_ids: np.ndarray | list[int] | None = None,
                    noise_subset: bool = False) -> np.ndarray:
        """Raw integer counter values for each interval.

        Parameters
        ----------
        signals:
            Base-signal matrix ``(T, N_SIGNALS)`` from a simulator tier.
        noise_z:
            Standard-normal noise field ``(T, len(self))``; the caller
            draws it once per (trace, mode) so counter values do not
            depend on which subset is read.
        counter_ids:
            Optional subset of counters to materialise (saves memory
            when models only need 8-32 counters).
        noise_subset:
            When True, ``noise_z`` is already aligned to
            ``counter_ids`` — shape ``(T, len(counter_ids))`` — and is
            used as-is. The surrogate fast path draws only the subset
            it needs (from its own RNG stream) instead of the full
            catalog field.

        Returns
        -------
        ``(T, len(counter_ids))`` matrix of non-negative integer counts.
        """
        if counter_ids is None:
            ids = np.arange(len(self.counters))
        else:
            ids = np.asarray(counter_ids, dtype=np.int64)
        kind = self._kind[ids]
        raw = (signals[:, self._base1[ids]]
               + self._w2[ids][None, :] * signals[:, self._base2[ids]])
        raw = self._gain[ids][None, :] * raw + self._offset[ids][None, :]
        raw = np.maximum(raw, 0.0)
        # Dead counters read zero; stuck counters read their offset.
        dead = kind == KIND_DEAD
        raw[:, dead] = 0.0
        stuck = kind == KIND_STUCK
        raw[:, stuck] = self._offset[ids][stuck][None, :]
        # Poisson-like integer measurement noise.
        z = noise_z if noise_subset else noise_z[:, ids]
        noisy = raw + np.sqrt(raw) * z * self._noise[ids][None, :]
        counts = np.rint(np.maximum(noisy, 0.0))
        counts[:, stuck] = self._offset[ids][stuck][None, :]
        return counts


def _build_catalog(size: int = CATALOG_SIZE) -> CounterCatalog:
    """Construct the fixed hardware catalog."""
    rng = rng_mod.stream(CATALOG_SEED, "catalog")
    counters: list[CounterDef] = []

    def add(name: str, kind: int, base1: int, base2: int = 0,
            gain: float = 1.0, w2: float = 0.0, offset: float = 0.0,
            noise_mult: float = 1.0) -> None:
        counters.append(CounterDef(
            counter_id=len(counters), name=name, kind=kind, base1=base1,
            base2=base2, gain=gain, w2=w2, offset=offset,
            noise_mult=noise_mult,
        ))

    # Canonical named counters first (ids 0..18): Table 4, then the
    # CHARSTAR extras (Stall Count is shared).
    for name, sig in TABLE4_COUNTERS:
        add(name, KIND_ALIAS, signal_index(sig), noise_mult=0.6)
    table4_names = {name for name, _ in TABLE4_COUNTERS}
    for name, sig in CHARSTAR_COUNTERS:
        if name in table4_names:
            continue
        add(name, KIND_ALIAS, signal_index(sig), noise_mult=0.6)

    names = signal_names()

    # One clean alias for every base signal.
    for sig_idx, sig_name in enumerate(names):
        add(f"EVT.{sig_name.upper()}", KIND_ALIAS, sig_idx, noise_mult=0.8)

    # Scaled/unit-mask variants.
    n_scaled = 220
    for i in range(n_scaled):
        sig_idx = int(rng.integers(N_SIGNALS))
        gain = float(rng.choice([0.25, 0.5, 1.0, 2.0, 4.0]))
        offset = float(rng.choice([0.0, 0.0, 0.0, 1.0, 5.0]))
        add(f"EVT.{names[sig_idx].upper()}.UMASK{i:03d}", KIND_SCALED,
            sig_idx, gain=gain, offset=offset,
            noise_mult=float(rng.uniform(0.6, 1.4)))

    # Speculative / edge-triggered flavours: noisy copies.
    n_noisy = 190
    for i in range(n_noisy):
        sig_idx = int(rng.integers(N_SIGNALS))
        add(f"EVT.{names[sig_idx].upper()}.SPEC{i:03d}", KIND_NOISY,
            sig_idx, gain=float(rng.uniform(0.8, 1.2)),
            noise_mult=float(rng.uniform(2.5, 7.0)))

    # Combination counters: weighted sums of two events.
    n_combo = 200
    for i in range(n_combo):
        b1 = int(rng.integers(N_SIGNALS))
        b2 = int(rng.integers(N_SIGNALS))
        add(f"EVT.COMBO{i:03d}.{names[b1].upper()}", KIND_COMBO, b1, b2,
            gain=float(rng.uniform(0.5, 1.5)),
            w2=float(rng.uniform(0.2, 1.0)),
            noise_mult=float(rng.uniform(0.8, 1.6)))

    # Rare-event counters: tiny expected counts, mostly zero.
    n_rare = 130
    for i in range(n_rare):
        sig_name = str(rng.choice(_RARE_SIGNALS))
        gain = float(rng.choice([1.0, 0.5, 0.1, 0.02]))
        add(f"EVT.RARE{i:03d}.{sig_name.upper()}", KIND_RARE,
            signal_index(sig_name), gain=gain,
            noise_mult=float(rng.uniform(0.8, 1.5)))

    # Dead (unwired on this stepping) and stuck-at counters.
    n_dead = 60
    for i in range(n_dead):
        add(f"EVT.RESERVED{i:03d}", KIND_DEAD, 0)
    n_stuck = 24
    for i in range(n_stuck):
        add(f"EVT.DEBUG{i:03d}", KIND_STUCK, 0,
            offset=float(rng.integers(1, 1000)))

    # Fill any remainder with more combos to reach the catalog size.
    extra = 0
    while len(counters) < size:
        b1 = int(rng.integers(N_SIGNALS))
        b2 = int(rng.integers(N_SIGNALS))
        add(f"EVT.COMBOX{extra:03d}.{names[b1].upper()}", KIND_COMBO, b1, b2,
            gain=float(rng.uniform(0.5, 1.5)),
            w2=float(rng.uniform(0.2, 1.0)),
            noise_mult=float(rng.uniform(0.8, 1.6)))
        extra += 1
    if len(counters) > size:
        counters = counters[:size]
    return CounterCatalog(counters)


_DEFAULT: CounterCatalog | None = None


def default_catalog() -> CounterCatalog:
    """The process-wide fixed hardware catalog (936 counters)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = _build_catalog()
    return _DEFAULT
