"""Counter screening and PF (Perona-Freeman) spectral selection.

Section 6.2 of the paper: start from all 936 counters, apply two
heuristic screens —

1. *Low activity*: flag counters that read zero for more than 15% of a
   trace; remove counters flagged in more than 5% of traces.
2. *Low signal-to-noise*: remove the bottom 50% of counters by
   standard deviation.

— then run Algorithm 1 (an adaptation of the Perona-Freeman
factorisation): repeatedly eigendecompose the covariance of the
surviving counters, read the second eigenvector, take the counter with
the largest-magnitude coefficient as the representative of a cluster of
statistically interchangeable counters (all counters whose relative
coefficient magnitude exceeds a similarity threshold ``tau``), remove
the cluster, and iterate until ``r`` counters are chosen.

Statistics are accumulated streaming (sums and outer-product sums), so
selection over hundreds of traces never materialises the full
``traces x intervals x 936`` tensor.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.linalg

from repro.errors import DatasetError
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import CounterCatalog
from repro.uarch.modes import Mode
from repro.workloads.generator import TraceSpec


@dataclasses.dataclass
class SelectionStats:
    """Streaming statistics over normalised counter data."""

    n_counters: int
    n_samples: int
    sum_x: np.ndarray  # (C,)
    sum_outer: np.ndarray  # (C, C)
    zero_flags: np.ndarray  # (n_traces,) bool rows x (C,) - fraction flags
    n_traces: int
    sum_lag: np.ndarray  # (C,) sum of x_t * x_{t+1}
    n_lag: int  # number of lag pairs accumulated

    @property
    def mean(self) -> np.ndarray:
        if self.n_samples == 0:
            raise DatasetError("no samples accumulated")
        return self.sum_x / self.n_samples

    @property
    def covariance(self) -> np.ndarray:
        mu = self.mean
        cov = self.sum_outer / self.n_samples - np.outer(mu, mu)
        # Numerical floor: tiny negative variances from cancellation.
        diag = np.maximum(np.diag(cov).copy(), 0.0)
        np.fill_diagonal(cov, diag)
        return cov

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(np.maximum(np.diag(self.covariance), 0.0))

    @property
    def flagged_trace_fraction(self) -> np.ndarray:
        """Fraction of traces in which each counter was low-activity."""
        if self.n_traces == 0:
            raise DatasetError("no traces accumulated")
        return self.zero_flags.sum(axis=0) / self.n_traces

    @property
    def lag1_autocorrelation(self) -> np.ndarray:
        """Lag-1 autocorrelation of each counter.

        A measurable signal-to-noise proxy: workload phases persist
        across intervals, so a counter dominated by real phase signal
        has high lag-1 autocorrelation, while white measurement noise
        pushes it toward zero.
        """
        if self.n_lag == 0:
            raise DatasetError("no lag pairs accumulated")
        mu = self.mean
        var = np.maximum(np.diag(self.covariance), 1e-24)
        lag_cov = self.sum_lag / self.n_lag - mu * mu
        return np.clip(lag_cov / var, -1.0, 1.0)


def gather_selection_stats(collector: TelemetryCollector,
                           traces: list[TraceSpec],
                           modes: tuple[Mode, ...] = (Mode.HIGH_PERF,
                                                      Mode.LOW_POWER),
                           zero_interval_fraction: float = 0.15,
                           ) -> SelectionStats:
    """Accumulate selection statistics over traces (both modes).

    ``zero_interval_fraction`` is the paper's 15%: a counter is flagged
    low-activity within a trace when it reads zero in more than that
    fraction of the trace's intervals.
    """
    n_counters = len(collector.catalog)
    sum_x = np.zeros(n_counters)
    sum_outer = np.zeros((n_counters, n_counters))
    sum_lag = np.zeros(n_counters)
    flags: list[np.ndarray] = []
    n_samples = 0
    n_lag = 0
    for trace in traces:
        for mode in modes:
            snap = collector.snapshot(trace, mode)
            x = snap.normalized
            sum_x += x.sum(axis=0)
            sum_outer += x.T @ x
            n_samples += x.shape[0]
            if x.shape[0] > 1:
                sum_lag += (x[:-1] * x[1:]).sum(axis=0)
                n_lag += x.shape[0] - 1
            zero_frac = (snap.counts == 0).mean(axis=0)
            flags.append(zero_frac > zero_interval_fraction)
    return SelectionStats(
        n_counters=n_counters,
        n_samples=n_samples,
        sum_x=sum_x,
        sum_outer=sum_outer,
        zero_flags=np.array(flags, dtype=bool),
        n_traces=len(flags),
        sum_lag=sum_lag,
        n_lag=n_lag,
    )


def screen_low_activity(stats: SelectionStats,
                        trace_fraction: float = 0.05) -> np.ndarray:
    """Counters surviving the low-activity screen (paper: >5% of traces)."""
    return np.flatnonzero(stats.flagged_trace_fraction <= trace_fraction)


def screen_low_std(stats: SelectionStats, surviving: np.ndarray,
                   keep_fraction: float = 0.5) -> np.ndarray:
    """Drop the bottom half of surviving counters by standard deviation.

    Standard deviations are compared on mean-relative scale (coefficient
    of variation) so counters with different natural magnitudes compete
    fairly — low CV means low signal-to-noise under the paper's
    post-silicon Gaussian-variation assumption.
    """
    std = stats.std[surviving]
    mean = np.abs(stats.mean[surviving])
    cv = std / np.maximum(mean, 1e-12)
    keep = max(1, int(round(len(surviving) * keep_fraction)))
    order = np.argsort(-cv, kind="stable")
    kept = surviving[np.sort(order[:keep])]
    return kept


@dataclasses.dataclass(frozen=True)
class PFSelectionResult:
    """Output of PF counter selection."""

    selected_ids: list[int]
    groups: list[list[int]]  # counter-id cluster removed at each step
    screened_ids: np.ndarray  # counters that survived both screens

    def names(self, catalog: CounterCatalog) -> list[str]:
        """Display names of the selected counters."""
        return [catalog[i].name for i in self.selected_ids]


def pf_counter_selection(stats: SelectionStats, r: int = 12,
                         tau: float = 0.7,
                         trace_fraction: float = 0.05,
                         keep_fraction: float = 0.5) -> PFSelectionResult:
    """Algorithm 1: screens plus Perona-Freeman spectral selection.

    Works on the *correlation* matrix of surviving counters (the
    centred, variance-normalised covariance), so a cluster is a set of
    counters that move together regardless of units. Each cluster's
    representative is the member with the highest lag-1 autocorrelation
    — the highest-signal-to-noise view of the cluster's shared signal —
    with ties broken toward the lowest counter id (the catalog's
    canonical, architecturally-documented counters come first).
    """
    surviving = screen_low_activity(stats, trace_fraction)
    surviving = screen_low_std(stats, surviving, keep_fraction)
    if surviving.size == 0:
        raise DatasetError("no counters survive the screens")

    cov = stats.covariance[np.ix_(surviving, surviving)]
    std = np.sqrt(np.maximum(np.diag(cov), 1e-24))
    corr = cov / np.outer(std, std)
    np.fill_diagonal(corr, 1.0)

    autocorr = stats.lag1_autocorrelation
    remaining = surviving.copy()
    matrix = corr
    selected: list[int] = []
    groups: list[list[int]] = []
    for _ in range(r):
        n = matrix.shape[0]
        if n == 0:
            break
        if n == 1:
            selected.append(int(remaining[0]))
            groups.append([int(remaining[0])])
            break
        # Second eigenvector (second-largest eigenvalue), per Alg. 1.
        evals, evecs = scipy.linalg.eigh(matrix,
                                         subset_by_index=[n - 2, n - 1])
        second = np.abs(evecs[:, 0])  # columns ordered ascending
        peak = second.max()
        group_mask = second / max(peak, 1e-24) > tau
        group_mask[int(second.argmax())] = True
        members = remaining[group_mask]
        # Representative: cleanest view of the cluster's shared signal.
        rho = autocorr[members]
        best = rho.max()
        near_best = members[rho >= best - 0.02]
        pick = int(near_best.min())
        selected.append(pick)
        groups.append([int(c) for c in members])
        keep_mask = ~group_mask
        remaining = remaining[keep_mask]
        matrix = matrix[np.ix_(keep_mask, keep_mask)]
    if len(selected) < r:
        # Large redundancy groups can exhaust the pool before r picks;
        # backfill with the next-cleanest members of the removed
        # groups, in removal order, so the result always has r
        # counters (required by downstream fixed-width models).
        chosen = set(selected)
        for group in groups:
            members = [c for c in group if c not in chosen]
            members.sort(key=lambda c: -autocorr[c])
            for counter in members:
                if len(selected) >= r:
                    break
                selected.append(counter)
                chosen.add(counter)
            if len(selected) >= r:
                break
    return PFSelectionResult(
        selected_ids=selected,
        groups=groups,
        screened_ids=surviving,
    )
