"""Interval telemetry collection.

Reproduces the paper's data pipeline (Section 4.1): as a trace plays
in the simulator, counter values are snapshot every 10k instructions,
then *normalised by the number of cycles in each interval* (the paper
finds this improves model accuracy). Coarser granularities are produced
by summing successive intervals and re-normalising.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import rng as rng_mod
from repro.config import active_exec_config
from repro.errors import DatasetError
from repro.telemetry.counters import CounterCatalog, default_catalog
from repro.uarch.interval_model import IntervalModel, IntervalResult
from repro.uarch.modes import Mode
from repro.workloads.generator import TraceSpec


@dataclasses.dataclass(frozen=True)
class TelemetrySnapshot:
    """Telemetry for one trace in one mode.

    ``normalized`` is the counter matrix :math:`X = [x_1...x_T]` the
    paper's models consume — raw counts divided by interval cycles.
    """

    trace_name: str
    mode: Mode
    counter_ids: np.ndarray  # (C,)
    counts: np.ndarray  # (T, C) integer event counts
    normalized: np.ndarray  # (T, C) counts / cycles
    cycles: np.ndarray  # (T,)
    ipc: np.ndarray  # (T,)
    interval_instructions: int

    @property
    def n_intervals(self) -> int:
        return int(self.cycles.shape[0])

    def column(self, counter_id: int) -> np.ndarray:
        """Normalized values of one counter."""
        pos = np.flatnonzero(self.counter_ids == counter_id)
        if pos.size == 0:
            raise DatasetError(f"counter {counter_id} not in snapshot")
        return self.normalized[:, int(pos[0])]


def coarsen(snapshot: TelemetrySnapshot, factor: int) -> TelemetrySnapshot:
    """Aggregate successive intervals into coarser ones.

    Sums counts and cycles over ``factor``-interval groups and
    re-normalises, exactly as the paper coarsens 10k-instruction
    snapshots into larger prediction granularities. Trailing intervals
    that do not fill a group are dropped.
    """
    if factor <= 0:
        raise DatasetError(f"coarsen factor must be positive, got {factor}")
    if factor == 1:
        return snapshot
    t_full = (snapshot.n_intervals // factor) * factor
    if t_full == 0:
        raise DatasetError(
            f"trace too short ({snapshot.n_intervals} intervals) to "
            f"coarsen by {factor}"
        )
    shape = (t_full // factor, factor)
    counts = snapshot.counts[:t_full].reshape(shape[0], factor, -1).sum(axis=1)
    cycles = snapshot.cycles[:t_full].reshape(shape).sum(axis=1)
    inst = snapshot.interval_instructions * factor
    return TelemetrySnapshot(
        trace_name=snapshot.trace_name,
        mode=snapshot.mode,
        counter_ids=snapshot.counter_ids,
        counts=counts,
        normalized=counts / cycles[:, None],
        cycles=cycles,
        ipc=inst / cycles,
        interval_instructions=inst,
    )


class TelemetryCollector:
    """Runs the simulator and materialises counter snapshots."""

    def __init__(self, catalog: CounterCatalog | None = None,
                 model: IntervalModel | None = None) -> None:
        self.catalog = catalog or default_catalog()
        self.model = model or IntervalModel()

    def catalog_token(self) -> str:
        """Stable fingerprint of the counter catalog (for cache keys)."""
        return self.catalog.token()

    def _noise_field(self, trace: TraceSpec, mode: Mode,
                     n_intervals: int) -> np.ndarray:
        """Standard-normal measurement noise, one draw per counter.

        Drawn over the *full* catalog width so a counter's measured
        value never depends on which other counters are being read.
        """
        rng = rng_mod.stream(trace.seed, "telemetry", mode.value)
        return rng.standard_normal((n_intervals, len(self.catalog)))

    def snapshot(self, trace: TraceSpec, mode: Mode,
                 counter_ids: list[int] | np.ndarray | None = None,
                 result: IntervalResult | None = None) -> TelemetrySnapshot:
        """Collect telemetry for one trace in one mode.

        Parameters
        ----------
        counter_ids:
            Subset of catalog counters to materialise; defaults to the
            full catalog (memory heavy — prefer subsets for training).
        result:
            Pre-computed simulation result to reuse; simulated on
            demand otherwise.
        """
        if result is not None and result.mode is not mode:
            raise DatasetError(
                f"result mode {result.mode} does not match requested {mode}"
            )
        ids = (np.arange(len(self.catalog)) if counter_ids is None
               else np.asarray(counter_ids, dtype=np.int64))
        # Materialised snapshots persist in the attached SimCache: the
        # (T, catalog) noise field is the single most expensive step of
        # the warm closed loop, so skipping it entirely on a hit is
        # what makes repeated deployments fast. Gated on the batch
        # layer so REPRO_BATCH_SIM=0 reproduces the pre-batch flow.
        config = active_exec_config()
        simcache = self.model.simcache
        disk_key = None
        # Snapshots derived under the surrogate tier live in their own
        # key namespace: the tier token is decided by the config flag
        # (not the per-pair outcome), so keys stay deterministic across
        # backends and REPRO_SURROGATE=0 keys are untouched.
        tier = "surrogate" if config.surrogate else "interval"
        if simcache is not None and config.batch_sim:
            disk_key = simcache.snapshot_key(
                trace, mode, self.model.machine, ids, self.catalog_token(),
                tier=tier)
            cached = simcache.load_snapshot(disk_key)
            if cached is not None:
                return cached
        if result is None:
            result = self.model.simulate(trace, mode)
        if result.tier == "surrogate":
            # Surrogate fast path: draw measurement noise only for the
            # requested counter subset, from a dedicated stream. The
            # full-catalog field below is the single most expensive
            # step of a cold snapshot; skipping it is a large part of
            # the tier's speedup.
            rng = rng_mod.stream(trace.seed, "telemetry-surrogate",
                                 mode.value)
            noise = rng.standard_normal((result.n_intervals, ids.size))
            counts = self.catalog.materialize(result.signals, noise, ids,
                                              noise_subset=True)
        else:
            noise = self._noise_field(trace, mode, result.n_intervals)
            counts = self.catalog.materialize(result.signals, noise, ids)
        snapshot = TelemetrySnapshot(
            trace_name=trace.name,
            mode=mode,
            counter_ids=ids,
            counts=counts,
            normalized=counts / result.cycles[:, None],
            cycles=result.cycles.copy(),
            ipc=result.ipc.copy(),
            interval_instructions=result.interval_instructions,
        )
        if disk_key is not None:
            simcache.store_snapshot(disk_key, snapshot)
        return snapshot

    def snapshot_both(self, trace: TraceSpec,
                      counter_ids: list[int] | np.ndarray | None = None,
                      ) -> dict[Mode, TelemetrySnapshot]:
        """Telemetry for both modes of one trace (the training recipe)."""
        return {mode: self.snapshot(trace, mode, counter_ids)
                for mode in Mode}
