"""Telemetry subsystem.

The paper's CPU carries forward an existing telemetry system: 936
architecture and microarchitecture event counters routed to a single
on-chip convergence point (Section 3). This package models it:

* :mod:`repro.telemetry.counters` — the 936-counter catalog, derived
  from the simulator's base signals through aliases, gain/offset
  variants, noisy copies, combinations, rare-event counters, and dead
  or stuck counters (real PMU catalogs contain all of these, and the
  paper's two screening heuristics exist precisely to cull them).
* :mod:`repro.telemetry.collector` — interval snapshots: integer event
  counts with measurement noise, normalised by cycles per interval
  (Section 4.1 reports this normalisation improves accuracy), with
  optional coarsening by summing successive intervals.
* :mod:`repro.telemetry.selection` — the screening heuristics plus PF
  (Perona-Freeman) spectral counter selection (Algorithm 1).
"""

from repro.telemetry.collector import TelemetryCollector, coarsen
from repro.telemetry.counters import (
    CHARSTAR_COUNTERS,
    CounterCatalog,
    CounterDef,
    TABLE4_COUNTERS,
    default_catalog,
)
from repro.telemetry.selection import (
    PFSelectionResult,
    pf_counter_selection,
    screen_low_activity,
    screen_low_std,
)

__all__ = [
    "TelemetryCollector",
    "coarsen",
    "CHARSTAR_COUNTERS",
    "CounterCatalog",
    "CounterDef",
    "TABLE4_COUNTERS",
    "default_catalog",
    "PFSelectionResult",
    "pf_counter_selection",
    "screen_low_activity",
    "screen_low_std",
]
