"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points
without writing code:

* ``demo`` — train Best RF on a small corpus and deploy it (the
  quickstart, numerically).
* ``budget`` — print the microcontroller ops-budget table (Table 3
  left).
* ``counters`` — run PF Counter Selection and print the chosen set
  (Table 4).
* ``residency`` — ideal low-power residency per held-out benchmark
  (Figure 7).
* ``evaluate`` — train a chosen model and report its deployment
  metrics (one Figure-8 row).
* ``catalog`` — summarise the 936-counter telemetry catalog.
* ``obs export-trace`` — convert a ``REPRO_TRACE`` JSON file to Chrome
  ``about:tracing`` format.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.config import experiment_seed


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=None,
                        help="experiment seed (default: REPRO_SEED or 7)")
    parser.add_argument("--exec-backend", default=None,
                        choices=["serial", "thread", "process", "auto"],
                        help="execution backend for dataset-scale fan-out; "
                             "'auto' probes and only fans out when workers "
                             "would win (default: REPRO_EXEC_BACKEND or "
                             "serial)")
    parser.add_argument("--exec-workers", type=int, default=None,
                        help="worker count for parallel backends "
                             "(default: REPRO_EXEC_WORKERS or CPU count)")
    parser.add_argument("--exec-arena", type=int, default=None,
                        choices=[0, 1],
                        help="ship trace corpora to process workers via a "
                             "zero-copy memory-mapped arena (default: "
                             "REPRO_EXEC_ARENA or 1)")
    parser.add_argument("--exec-shmres", type=int, default=None,
                        choices=[0, 1],
                        help="return large worker results through shared-"
                             "memory segments instead of pickling them "
                             "(process backend; default: REPRO_EXEC_SHMRES "
                             "or 1)")
    parser.add_argument("--exec-shard", type=int, default=None,
                        metavar="N",
                        help="stream dataset builds, evaluations and "
                             "screens in shards of N traces/cells with "
                             "bounded parent memory (default: "
                             "REPRO_EXEC_SHARD or unsharded)")
    parser.add_argument("--exec-chunk", type=int, default=None,
                        help="fixed items per parallel task (default: "
                             "REPRO_EXEC_CHUNK, or adaptive from per-item "
                             "cost)")
    parser.add_argument("--exec-retries", type=int, default=None,
                        help="retries for a failed parallel chunk before "
                             "degrading or raising (default: "
                             "REPRO_EXEC_RETRIES or 2)")
    parser.add_argument("--exec-timeout", type=float, default=None,
                        help="per-task timeout in seconds for pool "
                             "backends; 0 disables (default: "
                             "REPRO_EXEC_TIMEOUT or off)")
    parser.add_argument("--fault-spec", default=None,
                        help="deterministic fault-injection spec, e.g. "
                             "'seed=7,crash=0.05,corrupt_cache=0.1' "
                             "(default: REPRO_FAULT_SPEC or off)")
    parser.add_argument("--surrogate", type=int, default=None,
                        choices=[0, 1],
                        help="serve confidence-gated learned predictions "
                             "above the interval simulator (default: "
                             "REPRO_SURROGATE or 0)")
    parser.add_argument("--surrogate-threshold", type=float, default=None,
                        metavar="REL",
                        help="accept a (trace, mode) pair when the "
                             "ensemble's relative CPI disagreement stays "
                             "under REL at the 95th percentile (default: "
                             "REPRO_SURROGATE_THRESHOLD or 0.02)")
    parser.add_argument("--surrogate-probes", type=int, default=None,
                        metavar="N",
                        help="probe traces simulated through the interval "
                             "tier to train and gate the surrogate "
                             "(default: REPRO_SURROGATE_PROBES or 32)")
    parser.add_argument("--exec-report", action="store_true",
                        help="print stage timings, cache hit rates, payload "
                             "bytes, worker utilisation and resilience "
                             "counters at exit")
    parser.add_argument("--trace", nargs="?", const="1", default=None,
                        metavar="PATH",
                        help="emit a structured JSON trace of the run; "
                             "with no PATH, writes repro_trace.json "
                             "(default: REPRO_TRACE or off)")
    parser.add_argument("--obs-report", action="store_true",
                        help="print the observability report at exit: "
                             "per-stage wall time and throughput, cache "
                             "hit ratios, arena payload bytes, worker-pool "
                             "health and merged worker-side counters")


def _seed(args: argparse.Namespace) -> int:
    return args.seed if args.seed is not None else experiment_seed()


def cmd_demo(args: argparse.Namespace) -> int:
    from repro import quick_demo
    result = quick_demo(seed=_seed(args))
    for key, value in result.items():
        print(f"{key:20s} {value * 100:6.2f}%")
    return 0


def cmd_budget(args: argparse.Namespace) -> int:
    from repro.firmware import Microcontroller
    uc = Microcontroller()
    print(f"{'granularity':>12s} {'max uC ops':>11s} {'budget':>7s}")
    for row in uc.budget_table():
        print(f"{row.granularity:12d} {row.max_ops:11d} "
              f"{row.ops_budget:7d}")
    return 0


def cmd_counters(args: argparse.Namespace) -> int:
    from repro.core.pipeline import select_counters
    from repro.data.builders import hdtr_traces
    from repro.telemetry.collector import TelemetryCollector
    from repro.telemetry.counters import default_catalog
    from repro.workloads.categories import hdtr_corpus
    seed = _seed(args)
    collector = TelemetryCollector()
    apps = hdtr_corpus(seed)[::4]
    traces = hdtr_traces(seed, apps=apps, workloads_per_app=1,
                         intervals_per_trace=80)
    selected = select_counters(traces, collector, r=args.r)
    catalog = default_catalog()
    for rank, counter_id in enumerate(selected, start=1):
        print(f"{rank:3d}. {catalog[counter_id].name}")
    return 0


def cmd_residency(args: argparse.Namespace) -> int:
    import numpy as np
    from repro.core.labels import gating_labels
    from repro.telemetry.collector import TelemetryCollector
    from repro.workloads.spec2017 import spec2017_traces
    seed = _seed(args)
    collector = TelemetryCollector()
    traces = spec2017_traces(seed + 92, intervals_per_trace=160,
                             traces_per_workload=1)
    by_app: dict[str, list[float]] = {}
    for trace in traces:
        labels = gating_labels(trace, model=collector.model)
        by_app.setdefault(trace.app.name, []).append(labels.residency)
    means = []
    for app, values in sorted(by_app.items()):
        mean = float(np.mean(values))
        means.append(mean)
        print(f"{app:22s} {mean * 100:5.1f}%")
    print(f"{'AVERAGE':22s} {float(np.mean(means)) * 100:5.1f}%  "
          "(paper: 45.7%)")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core.pipeline import build_standard_models
    from repro.data.builders import hdtr_traces
    from repro.eval.runner import evaluate_predictor
    from repro.telemetry.collector import TelemetryCollector
    from repro.workloads.categories import hdtr_corpus
    from repro.workloads.spec2017 import spec2017_traces
    seed = _seed(args)
    collector = TelemetryCollector()
    stride = 1 if args.full else 3
    apps = hdtr_corpus(seed)[::stride]
    train = hdtr_traces(seed, apps=apps, workloads_per_app=2,
                        intervals_per_trace=120)
    models = build_standard_models(train, seed=seed, collector=collector,
                                   include=[args.model],
                                   selection_traces=40)
    test = spec2017_traces(seed + 92, intervals_per_trace=200,
                           traces_per_workload=1)
    if not args.full:
        test = test[::2]
    suite = evaluate_predictor(models[args.model], test,
                               collector=collector)
    print(f"model          {args.model}")
    print(f"granularity    {suite.granularity} instructions")
    print(f"ppw_gain       {suite.mean_ppw_gain * 100:6.2f}%")
    print(f"rsv            {suite.mean_rsv * 100:6.2f}%")
    print(f"pgos           {suite.mean_pgos * 100:6.2f}%")
    print(f"residency      {suite.mean_residency * 100:6.2f}%")
    print(f"avg_perf       {suite.mean_avg_performance * 100:6.2f}%")
    worst = max(suite.per_benchmark, key=lambda b: b.rsv)
    print(f"worst_rsv_app  {worst.app_name} ({worst.rsv * 100:.1f}%)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if getattr(args, "supervise", False):
        # Process-level supervision: this parent stays tiny and
        # re-execs the daemon (same command minus --supervise) when it
        # dies uncleanly, within the configured restart budget. The
        # already-applied env config flows to the child, so checkpoint
        # and serve knobs survive the re-exec.
        from repro.config import serve_restarts
        from repro.serve.supervisor import run_supervised
        child = [sys.executable, "-m", "repro"] + [
            a for a in getattr(args, "_argv", sys.argv[1:])
            if a != "--supervise"]
        return run_supervised(child, serve_restarts())
    from repro.serve import build_server
    server = build_server(
        args.socket, predictor_kind=args.predictor,
        n_apps=args.apps, workloads_per_app=args.workloads_per_app,
        intervals=args.intervals, seed=_seed(args))
    server.install_signal_handlers()
    server.start()
    warm = (server.checkpoint_info or {}).get("loaded", False)
    online = ""
    if server.online_enabled:
        online = (f", online gen {server.registry.generation} "
                  f"ring {server.ring.capacity}")
    print(f"serving {len(server.traces)} traces with "
          f"{server.cpu.predictor.name} on {server.address} "
          f"(batch<={server.max_batch}, wait {server.max_wait_us}us, "
          f"queue<={server.queue_bound}, "
          f"init {server.init_s * 1e3:.1f}ms "
          f"{'warm' if warm else 'cold'}{online})", flush=True)
    server.serve_forever()
    return 0


def cmd_online_status(args: argparse.Namespace) -> int:
    """Continual-adaptation surface of a running daemon's health op."""
    import json
    from repro.serve import ServeClient
    with ServeClient(args.socket) as client:
        health = client.health_status()
    doc = {
        "model_generation": health.model_generation,
        "ready": health.ready,
        "online": health.online,
    }
    print(json.dumps(doc, indent=2))
    return 0 if health.online is not None else 1


def cmd_request(args: argparse.Namespace) -> int:
    import json
    if args.oneshot:
        # Cold-start reference: answer one adapt request in-process,
        # paying the full corpus + predictor startup per invocation —
        # the bill the resident daemon amortises away.
        from repro.core.adaptive_cpu import AdaptiveCPU
        from repro.serve import const_predictor, quick_forest_predictor
        from repro.serve import serving_corpus
        from repro.serve.protocol import adapt_payload
        traces = serving_corpus(args.apps, args.workloads_per_app,
                                args.intervals, _seed(args))
        predictor = (const_predictor() if args.predictor == "const"
                     else quick_forest_predictor(traces))
        cpu = AdaptiveCPU(predictor)
        result = adapt_payload(cpu.run(traces[args.trace_index]))
        print(json.dumps({"ok": True, "op": "adapt", "tier": "interval",
                          "result": result}, indent=2))
        return 0
    from repro.serve import ServeClient
    with ServeClient(args.socket, tenant=args.tenant) as client:
        if args.op == "ping":
            response: dict = {"ok": client.ping(), "op": "ping"}
        elif args.op == "stats":
            response = {"ok": True, "op": "stats",
                        "stats": client.stats()}
        elif args.op == "health":
            response = {"ok": True, "op": "health",
                        "health": client.health()}
        elif args.op == "shutdown":
            response = client.shutdown()
        else:
            response = client.adapt(args.trace_index,
                                    budget_ms=args.budget_ms)
    print(json.dumps(response, indent=2))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.summary import write_report
    path = write_report(path=args.output)
    print(f"wrote {path}")
    return 0


def cmd_obs_export_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import export_trace_file
    out = args.output
    if out is None:
        base = args.trace_file
        out = (base[:-5] if base.endswith(".json") else base) \
            + ".chrome.json"
    info = export_trace_file(args.trace_file, out)
    print(f"run {info['run']}: {info['spans']} spans -> "
          f"{info['events']} events in {info['out']}")
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    from repro.telemetry.counters import default_catalog
    catalog = default_catalog()
    kinds: dict[str, int] = {}
    for counter in catalog.counters:
        kinds[counter.kind_name] = kinds.get(counter.kind_name, 0) + 1
    print(f"counters: {len(catalog)}")
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:8s} {count}")
    print("Table-4 set:", ", ".join(
        catalog[c].name for c in catalog.table4_ids))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predictive cluster gating reproduction "
                    "(Tarsa et al., ISCA 2019)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="train+deploy Best RF quickly")
    _add_common(p)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("budget", help="microcontroller ops budgets")
    _add_common(p)
    p.set_defaults(func=cmd_budget)

    p = sub.add_parser("counters", help="run PF counter selection")
    _add_common(p)
    p.add_argument("-r", type=int, default=12,
                   help="number of counters to select")
    p.set_defaults(func=cmd_counters)

    p = sub.add_parser("residency", help="ideal low-power residency")
    _add_common(p)
    p.set_defaults(func=cmd_residency)

    p = sub.add_parser("evaluate", help="train and evaluate one model")
    _add_common(p)
    p.add_argument("--model", default="best_rf",
                   choices=["best_rf", "best_mlp", "charstar", "srch",
                            "srch_coarse"])
    p.add_argument("--full", action="store_true",
                   help="use the full scaled corpus (slower)")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("catalog", help="summarise the counter catalog")
    _add_common(p)
    p.set_defaults(func=cmd_catalog)

    p = sub.add_parser("obs", help="observability utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "export-trace",
        help="convert a REPRO_TRACE JSON file to Chrome about:tracing "
             "format (load in chrome://tracing or ui.perfetto.dev)")
    _add_common(p)
    p.add_argument("trace_file", help="input obs trace JSON file")
    p.add_argument("--output", default=None,
                   help="output path (default: <input>.chrome.json)")
    p.set_defaults(func=cmd_obs_export_trace)

    p = sub.add_parser(
        "serve",
        help="run the persistent adaptation-serving daemon")
    _add_common(p)
    p.add_argument("--socket", default="repro_serve.sock",
                   help="unix socket path to listen on "
                        "(default: repro_serve.sock)")
    p.add_argument("--predictor", default="forest",
                   choices=["forest", "const"],
                   help="serving model: quick-trained dual random "
                        "forest or fixed-probability stub")
    p.add_argument("--apps", type=int, default=8,
                   help="applications in the serving corpus")
    p.add_argument("--workloads-per-app", type=int, default=2,
                   help="workloads per application")
    p.add_argument("--intervals", type=int, default=96,
                   help="telemetry intervals per trace")
    p.add_argument("--serve-batch-max", type=int, default=None,
                   dest="serve_batch_max",
                   help="micro-batch bound (default: "
                        "REPRO_SERVE_BATCH_MAX or 8)")
    p.add_argument("--serve-batch-wait-us", type=int, default=None,
                   dest="serve_batch_wait_us",
                   help="µs to hold an under-full batch open "
                        "(default: REPRO_SERVE_BATCH_WAIT_US or 2000)")
    p.add_argument("--serve-queue-bound", type=int, default=None,
                   dest="serve_queue_bound",
                   help="admission queue bound before shedding "
                        "(default: REPRO_SERVE_QUEUE_BOUND or 64)")
    p.add_argument("--serve-batch-timeout", type=float, default=None,
                   dest="serve_batch_timeout",
                   help="seconds an in-flight batch may execute before "
                        "the watchdog abandons it (default: "
                        "REPRO_SERVE_BATCH_TIMEOUT or 30)")
    p.add_argument("--checkpoint", default=None,
                   dest="serve_checkpoint", metavar="PATH",
                   help="warm-state checkpoint path: restore corpus + "
                        "trained predictor from it when valid, write it "
                        "after a cold build (default: "
                        "REPRO_SERVE_CHECKPOINT or off)")
    p.add_argument("--serve-restarts", type=int, default=None,
                   dest="serve_restarts",
                   help="restart budget for --supervise (default: "
                        "REPRO_SERVE_RESTARTS or 3)")
    p.add_argument("--supervise", action="store_true",
                   help="run under a supervising parent that re-execs "
                        "the daemon on unclean death, within the "
                        "restart budget")
    p.add_argument("--online", action="store_true", default=None,
                   help="enable the continual-adaptation loop: sample "
                        "served telemetry, retrain on drift, hot-swap "
                        "promoted models (default: REPRO_ONLINE)")
    p.add_argument("--online-ring", type=int, default=None,
                   dest="online_ring",
                   help="telemetry ring capacity (default: "
                        "REPRO_ONLINE_RING or 2048)")
    p.add_argument("--online-sample", type=int, default=None,
                   dest="online_sample",
                   help="sample 1 in N served requests into the ring "
                        "(default: REPRO_ONLINE_SAMPLE or 1)")
    p.add_argument("--online-drift-window", type=int, default=None,
                   dest="online_drift_window",
                   help="samples per drift-check window (default: "
                        "REPRO_ONLINE_DRIFT_WINDOW or 64)")
    p.add_argument("--online-drift-threshold", type=float, default=None,
                   dest="online_drift_threshold",
                   help="PSI threshold that trips a retrain (default: "
                        "REPRO_ONLINE_DRIFT_THRESHOLD or 0.25)")
    p.add_argument("--online-interval", type=float, default=None,
                   dest="online_interval_s",
                   help="seconds between learner drift polls (default: "
                        "REPRO_ONLINE_INTERVAL_S or 2.0)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "online",
        help="continual-adaptation utilities")
    online_sub = p.add_subparsers(dest="online_command", required=True)
    p = online_sub.add_parser(
        "status",
        help="model generation, ring/drift/learner state of a "
             "running daemon")
    _add_common(p)
    p.add_argument("--socket", default="repro_serve.sock",
                   help="unix socket path of the daemon")
    p.set_defaults(func=cmd_online_status)

    p = sub.add_parser(
        "request",
        help="send one request to a running serve daemon")
    _add_common(p)
    p.add_argument("--socket", default="repro_serve.sock",
                   help="unix socket path of the daemon")
    p.add_argument("--op", default="adapt",
                   choices=["adapt", "ping", "stats", "health",
                            "shutdown"])
    p.add_argument("--trace-index", type=int, default=0,
                   help="corpus trace to adapt (op=adapt)")
    p.add_argument("--tenant", default="default",
                   help="tenant name for SLA accounting")
    p.add_argument("--budget-ms", type=float, default=None,
                   help="per-request latency budget in ms")
    p.add_argument("--oneshot", action="store_true",
                   help="answer one adapt request fully in-process "
                        "(no daemon): the cold-start reference the "
                        "serving benchmark compares against")
    p.add_argument("--predictor", default="forest",
                   choices=["forest", "const"],
                   help="predictor for --oneshot")
    p.add_argument("--apps", type=int, default=8,
                   help="corpus applications for --oneshot")
    p.add_argument("--workloads-per-app", type=int, default=2,
                   help="corpus workloads per app for --oneshot")
    p.add_argument("--intervals", type=int, default=96,
                   help="corpus intervals per trace for --oneshot")
    p.set_defaults(func=cmd_request)

    p = sub.add_parser("report",
                       help="assemble benchmark outputs into REPORT.md")
    _add_common(p)
    p.add_argument("--output", default=None,
                   help="output path (default: benchmarks/REPORT.md)")
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # The raw invocation, for commands that re-exec themselves
    # (serve --supervise rebuilds the child command from it).
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    from repro.config import ExecConfig
    if args.fault_spec is not None:
        from repro.exec.faults import FaultPlan
        FaultPlan.parse(args.fault_spec)  # fail fast on a bad spec
    config = ExecConfig.from_cli(args)
    # Through the environment (not just install_exec_config) so
    # process-pool workers inherit every knob too.
    config.apply_env()
    if (args.exec_backend is not None or args.exec_workers is not None
            or args.exec_chunk is not None
            or args.exec_retries is not None
            or args.exec_timeout is not None):
        from repro.exec import configure
        configure(backend=config.backend, n_workers=config.workers,
                  chunk_size=config.chunk, retries=config.retries,
                  timeout=config.timeout)
    from repro import obs
    with obs.tracer.trace(f"repro.{args.command}"):
        status = args.func(args)
    if args.exec_report:
        from repro.exec import EXEC_STATS
        print(EXEC_STATS.report())
    if args.obs_report:
        print(obs.render_report())
    return status


if __name__ == "__main__":
    sys.exit(main())
