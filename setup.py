"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package,
so PEP-517 editable installs (``pip install -e .``) cannot build a
wheel. This shim lets ``python setup.py develop`` (and pip's legacy
editable path) install the package from pyproject metadata alone.
"""

from setuptools import setup

setup()
